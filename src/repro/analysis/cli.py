"""Command-line entry point: ``python -m repro.analysis``.

Exit-code contract (relied on by CI):

* ``0`` — every scanned file is clean,
* ``1`` — at least one finding,
* ``2`` — usage error, unknown rule code, missing path, or a file that
  does not parse.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.engine import analyze_paths
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_report
from repro.exceptions import ReproError

__all__ = ["main"]


def _split_codes(raw: Sequence[str]) -> list[str]:
    codes: list[str] = []
    for chunk in raw:
        codes.extend(c.strip() for c in chunk.split(",") if c.strip())
    return codes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--tier",
        choices=("syntax", "dataflow", "all"),
        default="all",
        help="restrict to one analysis tier (default: all)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. RR101,RR103)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="CODES",
        help="alias for --select: comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        rules = all_rules()
        if options.tier != "all":
            rules = [r for r in rules if r.tier == options.tier]
        for rule in rules:
            print(f"{rule.code}  [{rule.tier}]  {rule.name}")
            print(f"       {rule.rationale}")
        return 0

    select: list[str] | None = None
    if options.select is not None or options.rule is not None:
        select = _split_codes((options.select or []) + (options.rule or []))
    ignore = _split_codes(options.ignore) if options.ignore is not None else None
    if (options.select is not None or options.rule is not None) and not select:
        print("error: --select/--rule given but no rule codes supplied", file=sys.stderr)
        return 2
    try:
        report = analyze_paths(
            options.paths, select=select, ignore=ignore, tier=options.tier
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(report, options.format))
    return report.exit_code()
