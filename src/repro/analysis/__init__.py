"""Project-specific static analysis for the :mod:`repro` codebase.

The paper's algorithm is *exact*: its whole value over Monte-Carlo
estimators is that ``R(G, D)`` comes out bit-for-bit correct.  That
exactness dies silently from unseeded randomness, naive float
accumulation over ``2^|E|`` probability terms, or an off-by-one bitmask
width — failure modes no generic linter knows about.  This package is a
small AST lint engine with rules that encode the repo's numerical and
bitmask invariants:

========  ==========================================================
RR101     no unseeded randomness (``random.*`` / legacy ``np.random.*``)
RR102     no bare ``sum()`` / ``+=`` over probability-typed iterables
RR103     ``1 << n`` / ``2 ** n`` table allocations need a budget guard
RR104     raised exceptions must derive from :class:`ReproError`
RR105     no mutable default arguments
RR106     public functions in core/flow/probability fully annotated
========  ==========================================================

Run it as ``python -m repro.analysis [paths...]``; exit code 0 means
clean, 1 means findings, 2 means a usage or parse error.  Individual
lines are suppressed with ``# repro: noqa[RR103]`` (or a bare
``# repro: noqa`` for every rule).  See ``docs/STATIC_ANALYSIS.md``
for the full rule catalogue and rationale.
"""

from __future__ import annotations

from repro.analysis.context import ModuleContext
from repro.analysis.engine import AnalysisReport, analyze_paths, analyze_source
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, get_rule, register_rule

# Importing the rules package populates the registry as a side effect.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register_rule",
]
