"""Parsing of ``# repro: noqa[...]`` suppression comments.

Suppressions are deliberate, auditable exceptions: ``# repro:
noqa[RR103]`` silences exactly one rule on exactly one line, while a
bare ``# repro: noqa`` silences every rule on that line.  Plain
``# noqa`` (the flake8/ruff spelling) is intentionally *not* honoured —
the project prefix keeps generic-linter suppressions from silently
disabling the numerical invariants.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.analysis.findings import Finding

__all__ = ["SuppressionIndex"]

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]*)\])?", re.IGNORECASE)

#: Sentinel meaning "every rule suppressed on this line".
_ALL = "*"


class SuppressionIndex:
    """Per-line map of suppressed rule codes for one module."""

    def __init__(self, codes_by_line: dict[int, frozenset[str]]) -> None:
        self._codes_by_line = codes_by_line

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan every comment token; tolerate tokenize failures (the
        AST parse is the authoritative syntax gate)."""
        codes_by_line: dict[int, frozenset[str]] = {}
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return cls(codes_by_line)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA.search(token.string)
            if not match:
                continue
            raw = match.group("codes")
            if raw is None:
                codes = frozenset((_ALL,))
            else:
                codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
                if not codes:
                    # ``noqa[]`` — treat an empty bracket as suppressing
                    # nothing rather than everything.
                    continue
            line = token.start[0]
            codes_by_line[line] = codes_by_line.get(line, frozenset()) | codes
        return cls(codes_by_line)

    def suppresses(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a comment on its line."""
        codes = self._codes_by_line.get(finding.line)
        if codes is None:
            return False
        return _ALL in codes or finding.code in codes

    def __len__(self) -> int:
        return len(self._codes_by_line)
