"""The query planner: coalesce a round of queries into sweep batches.

Every query expands to its sweep points (one ``(network, demand)`` pair
per point), the whole round is merged by
:func:`repro.core.sweep.plan_batch` — queries sharing a topology
fingerprint, terminals and rate collapse into **one** plan: one cut
search, one cached array build, one vectorized Eq. 2/3 grid — and each
plan runs as a single :func:`repro.core.sweep.compute_reliability_sweep`
against the shared :class:`~repro.core.sweep.ArrayCache`.  On a warm
cache a plan spends **zero** max-flow solves, which is what the
``warm`` response flag and the ``serve_warm_hits`` counter report.

Queries that cannot ride a batch — an explicit non-bottleneck method,
or a topology the sweep engine refuses (no admissible bottleneck cut,
intractable sides) — fall back per point to
:func:`repro.core.api.dispatch_query`, the same dispatch chain as the
CLI, so served values stay pinned to the pointwise path either way.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.api import dispatch_query, is_coalescible
from repro.core.sweep import ArrayCache, compute_reliability_sweep, plan_batch
from repro.exceptions import ReproError
from repro.flow.base import MaxFlowSolver
from repro.obs.recorder import (
    SERVE_COALESCED,
    SERVE_QUERIES,
    SERVE_WARM_HITS,
    count,
    span,
)
from repro.serve.protocol import (
    ERROR_COMPUTE,
    Query,
    error_payload,
    response_payload,
)

__all__ = ["answer_queries"]


def _fallback_values(
    query: Query, solver: str | MaxFlowSolver | None, cache: ArrayCache | None
) -> tuple[list[float], int]:
    """Answer one query point-by-point through the API dispatch chain."""
    assert query.net is not None and query.demand is not None and query.spec is not None
    values: list[float] = []
    flow_calls = 0
    with span("serve.query", method=query.method or "auto", points=len(query.spec)):
        for index in range(len(query.spec)):
            point_net = query.spec.point_network(query.net, index)
            result = dispatch_query(
                point_net,
                query.demand,
                method=query.method,
                solver=solver,
                **({"cache": cache} if is_coalescible(query.method) else {}),
            )
            values.append(result.value)
            flow_calls += getattr(result, "flow_calls", 0)
    return values, flow_calls


def answer_queries(
    queries: Sequence[Query],
    *,
    cache: ArrayCache,
    solver: str | MaxFlowSolver | None = None,
) -> list[dict[str, Any]]:
    """Answer one round of ``op="query"`` queries, preserving order.

    Returns one response payload per query (success or
    ``compute-error``); protocol-level errors never reach this function.
    A failing merged plan degrades to per-query fallback instead of
    failing its batch siblings.
    """
    count(SERVE_QUERIES, len(queries))
    payloads: list[dict[str, Any] | None] = [None] * len(queries)

    # -- split: batchable queries expand into flat sweep points ------------
    flat_points = []  # (net, demand) per point, across batchable queries
    point_owner: list[int] = []  # flat point -> query index
    fallback: list[int] = []
    for qi, query in enumerate(queries):
        assert query.spec is not None and query.net is not None
        assert query.demand is not None
        if not is_coalescible(query.method):
            fallback.append(qi)
            continue
        for pi in range(len(query.spec)):
            flat_points.append((query.spec.point_network(query.net, pi), query.demand))
            point_owner.append(qi)

    with span("serve.batch", queries=len(queries), points=len(flat_points)):
        plans = plan_batch(flat_points)
        point_values: dict[int, float] = {}
        query_flow_calls: dict[int, int] = {}
        query_batch: dict[int, tuple[int, int]] = {}
        for plan in plans:
            members = sorted({point_owner[i] for i in plan.indices})
            try:
                swept = compute_reliability_sweep(
                    plan.net,
                    plan.demand,
                    sweep=plan.spec,
                    solver=solver,
                    cache=cache,
                )
            except ReproError:
                # The whole plan is un-sweepable (no admissible cut,
                # intractable sides): its members fall back individually
                # without poisoning the rest of the round.
                fallback.extend(members)
                continue
            for position, result in zip(plan.indices, swept.results):
                point_values[position] = result.value
            if len(members) > 1:
                count(SERVE_COALESCED, len(members) - 1)
            for qi in members:
                query_flow_calls[qi] = swept.flow_calls
                query_batch[qi] = (len(members), len(plan.indices))

        # -- scatter batch answers back per query -------------------------
        flat_index = 0
        for qi, query in enumerate(queries):
            assert query.spec is not None
            if not is_coalescible(query.method):
                continue
            indices = range(flat_index, flat_index + len(query.spec))
            flat_index += len(query.spec)
            if qi in fallback:
                continue
            flow_calls = query_flow_calls[qi]
            if flow_calls == 0:
                count(SERVE_WARM_HITS, 1)
            batch_queries, batch_points = query_batch[qi]
            payloads[qi] = response_payload(
                query,
                [point_values[i] for i in indices],
                flow_calls=flow_calls,
                batch_queries=batch_queries,
                batch_points=batch_points,
                method="bottleneck",
            )

        # -- the pointwise back door --------------------------------------
        for qi in fallback:
            query = queries[qi]
            try:
                values, flow_calls = _fallback_values(query, solver, cache)
            except ReproError as exc:
                payloads[qi] = error_payload(ERROR_COMPUTE, str(exc), query.qid)
                continue
            if flow_calls == 0 and is_coalescible(query.method):
                count(SERVE_WARM_HITS, 1)
            assert query.spec is not None
            payloads[qi] = response_payload(
                query,
                values,
                flow_calls=flow_calls,
                batch_queries=1,
                batch_points=len(query.spec),
                method=query.method or "auto",
            )

    complete = [p for p in payloads if p is not None]
    if len(complete) != len(queries):  # pragma: no cover - every path fills one
        raise ReproError("planner failed to answer every query")
    return complete
