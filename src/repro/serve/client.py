"""A minimal blocking client for the reliability daemon.

Runs in the *caller's* process — the blocking reads here never stall
the daemon's event loop, which is why this module (with ``server.py``,
which owns the ``select()`` loop) is exempt from lint rule RR113's
blocking-call ban.

>>> with ReliabilityClient("127.0.0.1", port) as client:  # doctest: +SKIP
...     reply = client.query(net, "s", "t", 2, availability=[0.9, 0.99])
...     reply["points"][0]["reliability"]
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping, Sequence

from repro.exceptions import ReproError
from repro.graph.io import to_dict
from repro.graph.network import FlowNetwork
from repro.serve.protocol import QUERY_SCHEMA, encode_line

__all__ = ["ReliabilityClient"]


class ReliabilityClient:
    """One TCP connection to a :class:`~repro.serve.server.ReliabilityServer`."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = bytearray()

    # -- raw plumbing (exposed for protocol-error tests) --------------------

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes — the door for torn/oversized/bad-line tests."""
        self._sock.sendall(data)

    def read_response(self) -> dict[str, Any]:
        """Block until one full response line arrives and decode it."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                decoded = json.loads(line.decode("utf-8"))
                if not isinstance(decoded, dict):
                    raise ReproError(f"malformed response line: {line!r}")
                return decoded
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ReproError("connection closed before a full response arrived")
            self._buffer.extend(chunk)

    def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one payload dict and read one response."""
        self.send_raw(encode_line(payload))
        return self.read_response()

    # -- the friendly surface ----------------------------------------------

    def query(
        self,
        net: FlowNetwork,
        source: Any,
        sink: Any,
        rate: int,
        *,
        availability: float | Sequence[float] | None = None,
        failure_scale: float | Sequence[float] | None = None,
        overrides: Mapping[int, float] | Sequence[Mapping[int, float]] | None = None,
        method: str | None = None,
        qid: Any = None,
    ) -> dict[str, Any]:
        """One reliability query; returns the decoded response payload."""
        payload: dict[str, Any] = {
            "schema": QUERY_SCHEMA,
            "op": "query",
            "network": to_dict(net),
            "source": source,
            "sink": sink,
            "rate": int(rate),
        }
        if qid is not None:
            payload["id"] = qid
        if availability is not None:
            payload["availability"] = (
                list(availability)
                if isinstance(availability, Sequence)
                else availability
            )
        if failure_scale is not None:
            payload["failure_scale"] = (
                list(failure_scale)
                if isinstance(failure_scale, Sequence)
                else failure_scale
            )
        if overrides is not None:
            if isinstance(overrides, Mapping):
                payload["overrides"] = {str(k): v for k, v in overrides.items()}
            else:
                payload["overrides"] = [
                    {str(k): v for k, v in entry.items()} for entry in overrides
                ]
        if method is not None:
            payload["method"] = method
        return self.request(payload)

    def ping(self) -> dict[str, Any]:
        """Readiness check."""
        return self.request({"schema": QUERY_SCHEMA, "op": "ping"})

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to exit cleanly; returns its acknowledgement."""
        return self.request({"schema": QUERY_SCHEMA, "op": "shutdown"})

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races
            pass

    def __enter__(self) -> "ReliabilityClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
