"""The wire protocol of the reliability daemon: ``repro.serve/query/v1``.

One JSON object per line (newline-delimited, UTF-8).  A query carries a
full network (the :mod:`repro.graph.io` dict format), a demand and at
most one probability axis:

.. code-block:: json

    {"schema": "repro.serve/query/v1", "op": "query", "id": 7,
     "network": {"name": "fig4", "nodes": ["s", "..."], "links": ["..."]},
     "source": "s", "sink": "t", "rate": 2,
     "availability": [0.9, 0.95, 0.99]}

Axes — mutually exclusive, all optional (no axis means "one point at
the network's own failure probabilities"):

``availability``
    Scalar or list: every link's failure probability becomes
    ``1 - value`` per point.
``failure_scale``
    Scalar or list of factors on the base failure probabilities.
``overrides``
    ``{"<link index>": p}`` map or list of maps patched onto the base
    probabilities per point.

Responses (``repro.serve/response/v1``) echo ``id`` and carry one
``{"x": ..., "reliability": ...}`` pair per point, the max-flow solves
the answering batch spent (``flow_calls``; 0 on a warm cache —
``"warm": true``) and the batch shape (``{"queries": n, "points": p}``).
Encoding is canonical (sorted keys, compact separators), so identical
queries produce byte-identical response lines — an invariant the
property suite pins.

Errors are per-line, never connection-fatal except ``oversized``:
``bad-json``, ``unsupported-schema``, ``bad-request``, ``oversized``,
``compute-error``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.api import available_methods
from repro.core.demand import FlowDemand
from repro.core.sweep import SweepSpec
from repro.exceptions import ReproError
from repro.graph.io import from_dict
from repro.graph.network import FlowNetwork

__all__ = [
    "ERROR_BAD_JSON",
    "ERROR_BAD_REQUEST",
    "ERROR_BAD_VERSION",
    "ERROR_COMPUTE",
    "ERROR_OVERSIZED",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Query",
    "QUERY_SCHEMA",
    "RESPONSE_SCHEMA",
    "control_payload",
    "decode_query",
    "encode_line",
    "error_payload",
    "response_payload",
]

QUERY_SCHEMA = "repro.serve/query/v1"
RESPONSE_SCHEMA = "repro.serve/response/v1"

#: Hard cap on one request line; a connection exceeding it without a
#: newline gets an ``oversized`` error and is closed (the only
#: connection-fatal protocol error).
MAX_LINE_BYTES = 4 * 1024 * 1024

ERROR_BAD_JSON = "bad-json"
ERROR_BAD_VERSION = "unsupported-schema"
ERROR_BAD_REQUEST = "bad-request"
ERROR_OVERSIZED = "oversized"
ERROR_COMPUTE = "compute-error"


class ProtocolError(ReproError):
    """A request line that cannot become a :class:`Query`.

    ``code`` is the stable error vocabulary above; it lands verbatim in
    the error response so clients can switch on it.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Query:
    """One decoded request line.

    ``op`` is ``"query"`` (the payload fields are set), ``"ping"`` or
    ``"shutdown"`` (control ops; payload fields are ``None``).
    """

    op: str
    qid: Any = None
    net: FlowNetwork | None = None
    demand: FlowDemand | None = None
    spec: SweepSpec | None = None
    method: str | None = None


def _require_mapping(data: Any) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ProtocolError(ERROR_BAD_REQUEST, "request must be a JSON object")
    return data


def _decode_axis(data: Mapping[str, Any]) -> SweepSpec:
    axes = [k for k in ("availability", "failure_scale", "overrides") if k in data]
    if len(axes) > 1:
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"at most one probability axis allowed, got {axes}"
        )
    try:
        if "availability" in data:
            raw = data["availability"]
            values = raw if isinstance(raw, list) else [raw]
            return SweepSpec.availability([float(v) for v in values])
        if "failure_scale" in data:
            raw = data["failure_scale"]
            values = raw if isinstance(raw, list) else [raw]
            return SweepSpec.failure_scale([float(v) for v in values])
        if "overrides" in data:
            raw = data["overrides"]
            maps = raw if isinstance(raw, list) else [raw]
            points = []
            for entry in maps:
                entry = _require_mapping(entry)
                points.append({int(k): float(v) for k, v in entry.items()})
            return SweepSpec.overrides(points)
        # No axis: one point at the network's own failure probabilities.
        return SweepSpec.overrides([{}])
    except ProtocolError:
        raise
    except (ReproError, TypeError, ValueError) as exc:
        raise ProtocolError(ERROR_BAD_REQUEST, f"bad probability axis: {exc}") from exc


def decode_query(line: bytes) -> Query:
    """Parse one request line into a :class:`Query`.

    Raises :class:`ProtocolError` with the appropriate error code on
    every malformed input; never raises anything else for untrusted
    bytes.
    """
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(ERROR_BAD_JSON, f"request is not UTF-8: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(ERROR_BAD_JSON, f"request is not JSON: {exc}") from exc
    data = _require_mapping(data)
    schema = data.get("schema")
    if schema != QUERY_SCHEMA:
        raise ProtocolError(
            ERROR_BAD_VERSION,
            f"unsupported schema {schema!r}; this daemon speaks {QUERY_SCHEMA}",
        )
    qid = data.get("id")
    op = data.get("op", "query")
    if op in ("ping", "shutdown"):
        return Query(op=op, qid=qid)
    if op != "query":
        raise ProtocolError(ERROR_BAD_REQUEST, f"unknown op {op!r}")
    if "network" not in data:
        raise ProtocolError(ERROR_BAD_REQUEST, "query is missing 'network'")
    try:
        net = from_dict(_require_mapping(data["network"]))
    except ProtocolError:
        raise
    except (ReproError, TypeError, KeyError, ValueError) as exc:
        raise ProtocolError(ERROR_BAD_REQUEST, f"bad network: {exc}") from exc
    missing = [k for k in ("source", "sink", "rate") if k not in data]
    if missing:
        raise ProtocolError(ERROR_BAD_REQUEST, f"query is missing {missing}")
    try:
        demand = FlowDemand(data["source"], data["sink"], int(data["rate"]))
        demand.validate_against(net)
    except (ReproError, TypeError, ValueError) as exc:
        raise ProtocolError(ERROR_BAD_REQUEST, f"bad demand: {exc}") from exc
    method = data.get("method")
    if method is not None and method not in available_methods():
        raise ProtocolError(
            ERROR_BAD_REQUEST,
            f"unknown method {method!r}; available: {available_methods()}",
        )
    spec = _decode_axis(data)
    return Query(op="query", qid=qid, net=net, demand=demand, spec=spec, method=method)


def _axis_label(spec: SweepSpec, index: int) -> Any:
    value = spec.values[index]
    if spec.kind == "overrides":
        return {str(k): v for k, v in value.items()}
    return value


def response_payload(
    query: Query,
    values: list[float],
    *,
    flow_calls: int,
    batch_queries: int,
    batch_points: int,
    method: str,
) -> dict[str, Any]:
    """The success response for one answered query."""
    spec = query.spec
    assert spec is not None
    points = [
        {"x": _axis_label(spec, i), "reliability": value}
        for i, value in enumerate(values)
    ]
    return {
        "schema": RESPONSE_SCHEMA,
        "id": query.qid,
        "ok": True,
        "kind": spec.kind,
        "method": method,
        "points": points,
        "flow_calls": int(flow_calls),
        "warm": flow_calls == 0,
        "batch": {"queries": int(batch_queries), "points": int(batch_points)},
    }


def control_payload(op: str, qid: Any = None) -> dict[str, Any]:
    """The acknowledgement for a ``ping`` / ``shutdown`` op."""
    return {"schema": RESPONSE_SCHEMA, "id": qid, "ok": True, "op": op}


def error_payload(code: str, message: str, qid: Any = None) -> dict[str, Any]:
    """The error response for one failed line."""
    return {
        "schema": RESPONSE_SCHEMA,
        "id": qid,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def encode_line(payload: Mapping[str, Any]) -> bytes:
    """Canonical one-line encoding: sorted keys, compact separators.

    Canonicalisation is what makes "byte-identical responses for
    identical queries" a testable invariant rather than a dict-order
    accident.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        + b"\n"
    )
