"""repro.serve — reliability-as-a-service for ROADMAP item 1.

A long-lived, single-threaded daemon answering reliability queries over
local TCP (newline-delimited JSON, schema ``repro.serve/query/v1``),
built on the PR 5/8 sweep cache so the paper's §III-C realization
arrays are built once and shared by every query on the same topology:

* :mod:`repro.serve.protocol` — the wire codec and error vocabulary;
* :mod:`repro.serve.planner` — request coalescing: a round of queries
  merges through :func:`repro.core.sweep.plan_batch` into one cut
  search / array build / vectorized Eq. 2-3 grid per topology;
* :mod:`repro.serve.server` — the ``select()`` event loop
  (:class:`ReliabilityServer`);
* :mod:`repro.serve.client` — a small blocking client
  (:class:`ReliabilityClient`) for tests, benches and scripts.

Warm-cache queries answer with **zero** max-flow solves, bit-identical
to a fresh :func:`~repro.core.bottleneck.bottleneck_reliability` call —
the serving twin of the sweep engine's pinned property.  Start one with
``repro serve`` (see ``docs/SERVING.md``).
"""

from __future__ import annotations

from repro.serve.client import ReliabilityClient
from repro.serve.planner import answer_queries
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    QUERY_SCHEMA,
    RESPONSE_SCHEMA,
    Query,
    decode_query,
    encode_line,
)
from repro.serve.server import ReliabilityServer

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "QUERY_SCHEMA",
    "Query",
    "RESPONSE_SCHEMA",
    "ReliabilityClient",
    "ReliabilityServer",
    "answer_queries",
    "decode_query",
    "encode_line",
]
