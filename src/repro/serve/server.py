"""The daemon: a single-threaded ``select()``-multiplexed TCP server.

One process, one thread, one event loop — the classic pattern: a
non-blocking listener plus per-connection read/write buffers, with
``select()`` arbitrating readiness.  Single-threadedness is load-
bearing twice over:

* the :class:`~repro.core.sweep.ArrayCache` and the obs recorder are
  touched without locks;
* queries that arrive together are *answered* together — every select
  wake drains all readable sockets (plus a short coalesce window) and
  hands the whole round to :func:`repro.serve.planner.answer_queries`,
  so concurrent queries on one topology merge into one sweep batch.

Blocking calls inside the handler path would stall every connected
client at once; lint rule RR113 statically rejects ``time.sleep``,
``subprocess`` and blocking socket reads outside this loop.

Lifecycle contract (mirrored by the CLI's ledger): a protocol
``shutdown`` op drains the write buffers and exits cleanly (ledger
status ``completed``); SIGTERM unwinds exceptionally through
``serve_forever`` (telemetry ``finish`` suppressed, ledger status
``interrupted``).
"""

from __future__ import annotations

import errno
import select
import socket
from typing import Any

from repro.core.demand import FlowDemand
from repro.core.sweep import ArrayCache, SweepSpec, compute_reliability_sweep
from repro.exceptions import ReproError, ReproValueError
from repro.flow.base import MaxFlowSolver
from repro.graph.network import FlowNetwork
from repro.obs.recorder import span, wallclock
from repro.serve.planner import answer_queries
from repro.serve.protocol import (
    ERROR_OVERSIZED,
    MAX_LINE_BYTES,
    ProtocolError,
    Query,
    control_payload,
    decode_query,
    encode_line,
    error_payload,
)

__all__ = ["ReliabilityServer"]

_RECV_CHUNK = 65536
#: How long serve_forever keeps flushing write buffers after a
#: ``shutdown`` op before closing anyway.
_DRAIN_SECONDS = 5.0


class _Connection:
    """Per-socket state: a read buffer, a write queue, and a fate."""

    __slots__ = ("sock", "inbuf", "outbuf", "close_after_flush")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.close_after_flush = False


class ReliabilityServer:
    """Serve reliability queries over local TCP until shutdown.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`port`).
    cache:
        The shared :class:`ArrayCache` (a fresh in-memory one when
        omitted).  Give it a directory + ``max_bytes`` for a persistent
        bounded tier.
    solver:
        Max-flow solver forwarded to every computation.
    coalesce_window:
        Seconds to keep draining newly-readable sockets after the first
        query of a round arrives, so near-simultaneous queries merge
        into one batch.  ``0`` answers each wake immediately.
    max_line_bytes:
        Per-line request cap; beyond it the connection gets an
        ``oversized`` error and is closed.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: ArrayCache | None = None,
        solver: str | MaxFlowSolver | None = None,
        coalesce_window: float = 0.005,
        max_line_bytes: int = MAX_LINE_BYTES,
        backlog: int = 128,
    ) -> None:
        if coalesce_window < 0:
            raise ReproValueError("coalesce_window must be non-negative")
        if max_line_bytes <= 0:
            raise ReproValueError("max_line_bytes must be positive")
        self.cache = cache if cache is not None else ArrayCache()
        self.solver = solver
        self.coalesce_window = coalesce_window
        self.max_line_bytes = max_line_bytes
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(backlog)
        listener.setblocking(False)
        self._listener = listener
        self._conns: dict[socket.socket, _Connection] = {}
        self._shutdown_requested = False
        self._closed = False
        #: Connections that vanished mid-line (torn requests) — dropped,
        #: never answered, never fatal to the loop.
        self.torn_requests = 0
        #: Queries answered since construction (all ops).
        self.queries_served = 0
        #: Rounds (select wakes that produced at least one query).
        self.rounds = 0

    # -- addressing --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return int(self._listener.getsockname()[1])

    @property
    def host(self) -> str:
        return str(self._listener.getsockname()[0])

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- warming -----------------------------------------------------------

    def warm(self, net: FlowNetwork, demand: FlowDemand) -> int:
        """Pre-build the realization arrays for ``(net, demand)``.

        One single-point sweep at the network's own probabilities: the
        §III-C columns it builds (or disk-loads) are exactly the ones
        every later probability-axis query on this topology reuses.
        Returns the max-flow solves spent (0 when the disk tier was
        already warm).
        """
        with span("serve.warm", links=net.num_links, rate=demand.rate):
            swept = compute_reliability_sweep(
                net,
                demand,
                sweep=SweepSpec.overrides([{}]),
                solver=self.solver,
                cache=self.cache,
            )
        return swept.flow_calls

    # -- the loop ----------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the loop to exit after flushing (thread-safe flag set)."""
        self._shutdown_requested = True

    def serve_forever(self, *, poll_interval: float = 0.25) -> None:
        """Run until a ``shutdown`` op (or :meth:`request_shutdown`).

        Exits only after pending responses are flushed (bounded by an
        internal drain deadline).  Exceptions — including the CLI's
        SIGTERM-raised unwind — propagate after closing every socket.
        """
        try:
            while not self._shutdown_requested:
                self.step(timeout=poll_interval)
            deadline = wallclock() + _DRAIN_SECONDS
            while self._has_pending_output() and wallclock() < deadline:
                self.step(timeout=0.05)
        finally:
            self.close()

    def step(self, timeout: float = 0.25) -> int:
        """One event-loop round; returns the number of queries answered.

        Public so tests (and the in-process bench harness) can drive
        the loop deterministically without a thread.
        """
        queries = self._collect(timeout)
        if not queries:
            self._flush_writable(0.0)
            return 0
        if self.coalesce_window > 0.0:
            deadline = wallclock() + self.coalesce_window
            while True:
                remaining = deadline - wallclock()
                if remaining <= 0:
                    break
                more = self._collect(remaining)
                if not more:
                    break
                queries.extend(more)
        self.rounds += 1
        self._answer(queries)
        self._flush_writable(0.0)
        return len(queries)

    # -- readiness plumbing -------------------------------------------------

    def _collect(self, timeout: float) -> list[tuple[_Connection, Query]]:
        """One ``select`` wake: accept, read, parse complete lines."""
        readers: list[socket.socket] = [self._listener]
        readers.extend(
            conn.sock for conn in self._conns.values() if not conn.close_after_flush
        )
        writers = [conn.sock for conn in self._conns.values() if conn.outbuf]
        readable, writable, _ = select.select(readers, writers, [], max(timeout, 0.0))
        for sock in writable:
            conn = self._conns.get(sock)
            if conn is not None:
                self._write(conn)
        queries: list[tuple[_Connection, Query]] = []
        for sock in readable:
            if sock is self._listener:
                self._accept()
                continue
            conn = self._conns.get(sock)
            if conn is not None:
                queries.extend(self._read(conn))
        return queries

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError as exc:  # pragma: no cover - platform races
                if exc.errno in (errno.EMFILE, errno.ENFILE):
                    return
                raise
            sock.setblocking(False)
            self._conns[sock] = _Connection(sock)

    def _read(self, conn: _Connection) -> list[tuple[_Connection, Query]]:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return []
        except (ConnectionError, OSError):
            self._drop(conn, torn=bool(conn.inbuf))
            return []
        if not data:
            # Peer closed; a half-sent line is a torn request — dropped,
            # not answered (there is nobody left to answer).
            self._drop(conn, torn=bool(conn.inbuf))
            return []
        conn.inbuf.extend(data)
        return self._parse(conn)

    def _parse(self, conn: _Connection) -> list[tuple[_Connection, Query]]:
        queries: list[tuple[_Connection, Query]] = []
        while True:
            newline = conn.inbuf.find(b"\n")
            if newline < 0:
                if len(conn.inbuf) > self.max_line_bytes:
                    conn.inbuf.clear()
                    # Flag first: _send drops the connection the moment
                    # the error finishes flushing.
                    conn.close_after_flush = True
                    self._send(
                        conn,
                        error_payload(
                            ERROR_OVERSIZED,
                            f"request line exceeds {self.max_line_bytes} bytes",
                        ),
                    )
                return queries
            line = bytes(conn.inbuf[:newline])
            del conn.inbuf[: newline + 1]
            if not line.strip():
                continue
            try:
                query = decode_query(line)
            except ProtocolError as exc:
                self._send(conn, error_payload(exc.code, str(exc)))
                continue
            queries.append((conn, query))

    def _answer(self, round_queries: list[tuple[_Connection, Query]]) -> None:
        compute: list[tuple[_Connection, Query]] = []
        for conn, query in round_queries:
            if query.op == "ping":
                self._send(conn, control_payload("ping", query.qid))
                self.queries_served += 1
            elif query.op == "shutdown":
                self._send(conn, control_payload("shutdown", query.qid))
                self.queries_served += 1
                self._shutdown_requested = True
            else:
                compute.append((conn, query))
        if not compute:
            return
        payloads = answer_queries(
            [query for _, query in compute], cache=self.cache, solver=self.solver
        )
        for (conn, _), payload in zip(compute, payloads):
            self._send(conn, payload)
            self.queries_served += 1

    # -- write plumbing -----------------------------------------------------

    def _send(self, conn: _Connection, payload: dict[str, Any]) -> None:
        conn.outbuf.extend(encode_line(payload))
        self._write(conn)

    def _write(self, conn: _Connection) -> None:
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except BlockingIOError:
                return
            except (ConnectionError, OSError):
                self._drop(conn, torn=False)
                return
            if sent <= 0:
                return
            del conn.outbuf[:sent]
        if conn.close_after_flush:
            self._drop(conn, torn=False)

    def _flush_writable(self, timeout: float) -> None:
        writers = [conn.sock for conn in self._conns.values() if conn.outbuf]
        if not writers:
            return
        _, writable, _ = select.select([], writers, [], max(timeout, 0.0))
        for sock in writable:
            conn = self._conns.get(sock)
            if conn is not None:
                self._write(conn)

    def _has_pending_output(self) -> bool:
        return any(conn.outbuf for conn in self._conns.values())

    def _drop(self, conn: _Connection, *, torn: bool) -> None:
        if torn:
            self.torn_requests += 1
        self._conns.pop(conn.sock, None)
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - close races
            pass

    def close(self) -> None:
        """Close the listener and every connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in list(self._conns.values()):
            self._drop(conn, torn=False)
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close races
            pass

    def __enter__(self) -> "ReliabilityServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
