"""Graph substrate: the :class:`FlowNetwork` data structure and
structural algorithms (connectivity, bridges, cuts, splits, I/O).

Everything the reliability algorithms consume lives here; the package
has no dependency on :mod:`repro.core` or :mod:`repro.flow` (the one
max-flow use inside cut discovery is imported lazily).
"""

from repro.graph.builders import (
    diamond,
    fujita_fig2_bridge,
    fujita_fig4,
    grid_network,
    parallel_links,
    series_chain,
    two_paths,
)
from repro.graph.connectivity import (
    articulation_points,
    bridges,
    component_of,
    connected_components,
    directed_reachable_from,
    has_directed_path,
    has_path,
    is_connected,
    reachable_from,
)
from repro.graph.cuts import (
    bridges_between,
    find_bottleneck,
    is_disconnecting,
    is_minimal_cut,
    minimal_st_cuts,
    minimum_cardinality_cut,
    verify_bottleneck,
)
from repro.graph.generators import (
    as_rng,
    bottlenecked_network,
    chained_network,
    layered_network,
    random_network,
)
from repro.graph.io import from_dict, load, loads, save, to_dict
from repro.graph.io import dumps as network_to_json
from repro.graph.network import FlowNetwork, Link, Node
from repro.graph.nodesplit import NodeSplit, split_nodes
from repro.graph.transforms import (
    SideSplit,
    SubnetworkView,
    alive_subnetwork,
    induced_subnetwork,
    split_on_cut,
)
from repro.graph.validation import validate_network, validate_terminals

__all__ = [
    "FlowNetwork",
    "Link",
    "Node",
    # builders
    "diamond",
    "fujita_fig2_bridge",
    "fujita_fig4",
    "grid_network",
    "parallel_links",
    "series_chain",
    "two_paths",
    # generators
    "as_rng",
    "bottlenecked_network",
    "chained_network",
    "layered_network",
    "random_network",
    # connectivity
    "articulation_points",
    "bridges",
    "component_of",
    "connected_components",
    "directed_reachable_from",
    "has_directed_path",
    "has_path",
    "is_connected",
    "reachable_from",
    # cuts
    "bridges_between",
    "find_bottleneck",
    "is_disconnecting",
    "is_minimal_cut",
    "minimal_st_cuts",
    "minimum_cardinality_cut",
    "verify_bottleneck",
    # transforms
    "NodeSplit",
    "split_nodes",
    "SideSplit",
    "SubnetworkView",
    "alive_subnetwork",
    "induced_subnetwork",
    "split_on_cut",
    # io
    "from_dict",
    "to_dict",
    "network_to_json",
    "loads",
    "load",
    "save",
    # validation
    "validate_network",
    "validate_terminals",
]
