"""Random network generators.

These produce the synthetic workloads for tests and benchmarks.  All of
them take an explicit seed or :class:`numpy.random.Generator`; none
touch global RNG state, so every generated instance is reproducible.

The central generator is :func:`bottlenecked_network`: two random
connected blobs joined by exactly ``k`` bottleneck links — the graph
family whose parameters (``k``, split ratio ``alpha``, total link count)
are precisely the quantities in the paper's ``O(2^{alpha |E|} |V||E|)``
bound.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.network import FlowNetwork, Node

__all__ = [
    "as_rng",
    "random_connected_block",
    "random_network",
    "bottlenecked_network",
    "chained_network",
    "layered_network",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` gives a generator seeded from OS entropy — callers that
    need reproducibility must pass an int or a generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _random_capacity(rng: np.random.Generator, max_capacity: int) -> int:
    return int(rng.integers(1, max_capacity + 1))


def _random_probability(
    rng: np.random.Generator, p_range: tuple[float, float]
) -> float:
    lo, hi = p_range
    if not (0.0 <= lo <= hi < 1.0):
        raise ValidationError(f"failure-probability range must satisfy 0 <= lo <= hi < 1, got {p_range}")
    return float(rng.uniform(lo, hi))


def random_connected_block(
    nodes: Sequence[Node],
    num_links: int,
    *,
    rng: np.random.Generator,
    max_capacity: int = 3,
    p_range: tuple[float, float] = (0.05, 0.3),
    net: FlowNetwork | None = None,
) -> FlowNetwork:
    """Add a connected random block over ``nodes`` to ``net``.

    First a random spanning tree guarantees connectivity, then the
    remaining ``num_links - (len(nodes) - 1)`` links are sampled
    uniformly (parallel links allowed, self-loops excluded).  Links are
    directed with a random orientation.

    Raises :class:`ValidationError` if ``num_links`` is too small to
    connect the nodes.
    """
    n = len(nodes)
    if n >= 2 and num_links < n - 1:
        raise ValidationError(
            f"cannot connect {n} nodes with only {num_links} links"
        )
    if net is None:
        net = FlowNetwork()
    net.add_nodes(nodes)
    remaining = num_links
    if n >= 2:
        order = list(rng.permutation(n))
        for position in range(1, n):
            tail_pos = int(rng.integers(0, position))
            u, v = nodes[order[tail_pos]], nodes[order[position]]
            if rng.random() < 0.5:
                u, v = v, u
            net.add_link(u, v, _random_capacity(rng, max_capacity), _random_probability(rng, p_range))
            remaining -= 1
    for _ in range(remaining):
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, n - 1))
        if j >= i:
            j += 1
        net.add_link(
            nodes[i], nodes[j], _random_capacity(rng, max_capacity), _random_probability(rng, p_range)
        )
    return net


def random_network(
    num_nodes: int,
    num_links: int,
    *,
    seed: int | np.random.Generator | None = 0,
    max_capacity: int = 3,
    p_range: tuple[float, float] = (0.05, 0.3),
) -> FlowNetwork:
    """A connected random network with terminals ``s`` and ``t``.

    Nodes are ``s``, ``t`` and ``v0..v{num_nodes-3}``.  The network is
    connected (undirected sense) but an s-t *directed* path is not
    guaranteed for every capacity draw — reliability may legitimately
    be 0.  Tests that need positive reliability should use
    :func:`bottlenecked_network` or :func:`layered_network`.
    """
    if num_nodes < 2:
        raise ValidationError("random_network needs at least the two terminals")
    rng = as_rng(seed)
    nodes: list[Node] = ["s", "t"] + [f"v{i}" for i in range(num_nodes - 2)]
    net = random_connected_block(
        nodes, num_links, rng=rng, max_capacity=max_capacity, p_range=p_range
    )
    net.name = f"random-{num_nodes}n-{num_links}m"
    return net


def bottlenecked_network(
    *,
    source_side_links: int,
    sink_side_links: int,
    num_bottlenecks: int = 2,
    demand: int = 2,
    seed: int | np.random.Generator | None = 0,
    max_capacity: int = 3,
    p_range: tuple[float, float] = (0.05, 0.3),
    source_side_nodes: int | None = None,
    sink_side_nodes: int | None = None,
) -> FlowNetwork:
    """A network with a designed set of ``num_bottlenecks`` bottleneck links.

    Structure: a random connected source-side block over nodes
    ``s, sv*, x0..x{k-1}``, a random connected sink-side block over
    ``y0..y{k-1}, tv*, t``, and the bottleneck links ``x_i -> y_i``.
    Extra guarantees so instances are interesting rather than trivially
    infeasible:

    * every ``x_i`` gets a direct link from ``s`` and every ``y_i`` a
      direct link to ``t`` (counted inside the side budgets), each with
      capacity >= ``demand`` — so with all links alive the demand is
      feasible and *every* assignment is realizable;
    * each bottleneck link has capacity ``demand`` so the assignment
      set is the full composition set of ``demand`` into ``k`` parts.

    The bottleneck links are the **first ``num_bottlenecks`` indices**
    (0..k-1); source-side links follow, then sink-side links.  This
    ordering is what :mod:`repro.core.bottleneck` discovers, and it also
    lets benchmarks slice the sides directly.
    """
    k = num_bottlenecks
    if k < 1:
        raise ValidationError("need at least one bottleneck link")
    if demand < 1:
        raise ValidationError("demand must be >= 1")
    rng = as_rng(seed)
    if source_side_nodes is None:
        source_side_nodes = max(k + 1, min(source_side_links, 2 + source_side_links // 2))
    if sink_side_nodes is None:
        sink_side_nodes = max(k + 1, min(sink_side_links, 2 + sink_side_links // 2))

    xs = [f"x{i}" for i in range(k)]
    ys = [f"y{i}" for i in range(k)]
    s_extra = max(0, source_side_nodes - 1 - k)
    t_extra = max(0, sink_side_nodes - 1 - k)
    s_nodes: list[Node] = ["s"] + [f"sv{i}" for i in range(s_extra)] + xs
    t_nodes: list[Node] = ys + [f"tv{i}" for i in range(t_extra)] + ["t"]

    net = FlowNetwork(name=f"bottlenecked-k{k}-d{demand}")
    # Bottleneck links first so their indices are 0..k-1.
    for i in range(k):
        net.add_link(xs[i], ys[i], demand, _random_probability(rng, p_range))

    # Source side: guaranteed feeder links + random connected remainder.
    feeders = [("s", x) for x in xs]
    budget_s = source_side_links - len(feeders)
    if budget_s < 0:
        raise ValidationError(
            f"source_side_links={source_side_links} too small for {k} feeder links"
        )
    for tail, head in feeders:
        net.add_link(tail, head, max(demand, _random_capacity(rng, max_capacity)), _random_probability(rng, p_range))
    if budget_s > 0 or len(s_nodes) > 1:
        spanning = len(s_nodes) - 1
        if budget_s < spanning:
            # The feeders already connect s to every x_i; only the extra
            # sv* nodes still need attaching.  Trim the node count when
            # the budget cannot attach them all.
            attachable = budget_s
            s_nodes = ["s"] + [f"sv{i}" for i in range(min(s_extra, max(0, attachable)))] + xs
        extra_nodes = [n for n in s_nodes if isinstance(n, str) and n.startswith("sv")]
        for node in extra_nodes:
            anchor = s_nodes[int(rng.integers(0, len(s_nodes)))]
            while anchor == node:
                anchor = s_nodes[int(rng.integers(0, len(s_nodes)))]
            net.add_link(anchor, node, _random_capacity(rng, max_capacity), _random_probability(rng, p_range))
            budget_s -= 1
        for _ in range(budget_s):
            i = int(rng.integers(0, len(s_nodes)))
            j = int(rng.integers(0, len(s_nodes) - 1))
            if j >= i:
                j += 1
            net.add_link(s_nodes[i], s_nodes[j], _random_capacity(rng, max_capacity), _random_probability(rng, p_range))

    # Sink side, mirrored.
    drains = [(y, "t") for y in ys]
    budget_t = sink_side_links - len(drains)
    if budget_t < 0:
        raise ValidationError(
            f"sink_side_links={sink_side_links} too small for {k} drain links"
        )
    for tail, head in drains:
        net.add_link(tail, head, max(demand, _random_capacity(rng, max_capacity)), _random_probability(rng, p_range))
    t_extra_nodes = [f"tv{i}" for i in range(min(t_extra, max(0, budget_t)))]
    t_nodes = ys + t_extra_nodes + ["t"]
    for node in t_extra_nodes:
        anchor = t_nodes[int(rng.integers(0, len(t_nodes)))]
        while anchor == node:
            anchor = t_nodes[int(rng.integers(0, len(t_nodes)))]
        net.add_link(node, anchor, _random_capacity(rng, max_capacity), _random_probability(rng, p_range))
        budget_t -= 1
    for _ in range(budget_t):
        i = int(rng.integers(0, len(t_nodes)))
        j = int(rng.integers(0, len(t_nodes) - 1))
        if j >= i:
            j += 1
        net.add_link(t_nodes[i], t_nodes[j], _random_capacity(rng, max_capacity), _random_probability(rng, p_range))

    return net


def chained_network(
    segment_links: Sequence[int],
    *,
    cut_sizes: Sequence[int] | int = 1,
    demand: int = 1,
    seed: int | np.random.Generator | None = 0,
    max_capacity: int = 3,
    p_range: tuple[float, float] = (0.05, 0.3),
) -> FlowNetwork:
    """A series of random blocks joined by bottleneck cuts.

    ``segment_links[i]`` is the link budget of segment ``i``; between
    consecutive segments runs a cut of ``cut_sizes[i]`` links (an int
    applies to every interface).  Segment 0 contains ``s``; the last
    segment contains ``t``.  Every interface node is fed/drained by a
    guaranteed high-capacity link so the all-alive network admits the
    demand.  This is the workload for the chain-decomposition extension.

    The generated cut link indices are recorded on the returned network
    as ``net._chain_cut_indices`` (a list of per-interface index lists),
    ready to pass to :func:`repro.core.chain_reliability`.
    """
    r = len(segment_links)
    if r < 2:
        raise ValidationError("chained_network needs at least two segments")
    if isinstance(cut_sizes, int):
        cut_list = [cut_sizes] * (r - 1)
    else:
        cut_list = list(cut_sizes)
    if len(cut_list) != r - 1:
        raise ValidationError(
            f"need {r - 1} cut sizes for {r} segments, got {len(cut_list)}"
        )
    rng = as_rng(seed)
    net = FlowNetwork(name=f"chained-{r}seg")

    # Interface nodes: cut j joins out-ports o{j}_{i} to in-ports n{j}_{i}.
    cut_link_indices: list[list[int]] = []
    for j, size in enumerate(cut_list):
        indices = []
        for i in range(size):
            indices.append(
                net.add_link(
                    f"o{j}_{i}", f"n{j}_{i}", demand, _random_probability(rng, p_range)
                )
            )
        cut_link_indices.append(indices)

    for seg in range(r):
        entry: list[Node]
        exits: list[Node]
        entry = ["s"] if seg == 0 else [f"n{seg - 1}_{i}" for i in range(cut_list[seg - 1])]
        exits = ["t"] if seg == r - 1 else [f"o{seg}_{i}" for i in range(cut_list[seg])]
        budget = segment_links[seg]
        required = len(entry) * len(exits) if seg not in (0, r - 1) else len(entry) * len(exits)
        # Guaranteed full bipartite wiring entry -> exits keeps every
        # assignment chain realizable when everything is alive.
        pairs = [(a, b) for a in entry for b in exits]
        if budget < len(pairs):
            raise ValidationError(
                f"segment {seg} budget {budget} below required wiring {len(pairs)}"
            )
        for a, b in pairs:
            net.add_link(a, b, demand, _random_probability(rng, p_range))
        budget -= len(pairs)
        seg_nodes: list[Node] = entry + exits
        for extra in range(budget):
            # Half the extras add internal relay nodes, half add parallels.
            if extra % 2 == 0 and budget - extra >= 2:
                relay = f"m{seg}_{extra}"
                a = seg_nodes[int(rng.integers(0, len(seg_nodes)))]
                b = seg_nodes[int(rng.integers(0, len(seg_nodes)))]
                net.add_link(a, relay, _random_capacity(rng, max_capacity), _random_probability(rng, p_range))
                # the pairing link is emitted on the next iteration
                seg_nodes.append(relay)
                continue
            i = int(rng.integers(0, len(seg_nodes)))
            j2 = int(rng.integers(0, max(1, len(seg_nodes) - 1)))
            if len(seg_nodes) > 1 and j2 >= i:
                j2 += 1
            j2 = min(j2, len(seg_nodes) - 1)
            if seg_nodes[i] == seg_nodes[j2]:
                continue
            net.add_link(seg_nodes[i], seg_nodes[j2], _random_capacity(rng, max_capacity), _random_probability(rng, p_range))
    net._chain_cut_indices = cut_link_indices  # type: ignore[attr-defined]
    return net


def layered_network(
    layer_sizes: Sequence[int],
    *,
    seed: int | np.random.Generator | None = 0,
    max_capacity: int = 3,
    p_range: tuple[float, float] = (0.05, 0.3),
    density: float = 1.0,
) -> FlowNetwork:
    """A feed-forward layered network ``s -> L1 -> ... -> Lr -> t``.

    Each node of layer ``i`` links to each node of layer ``i+1`` with
    probability ``density`` (at least one outgoing and one incoming link
    per node are forced so no node is dead weight).  The shape of choice
    for max-flow stress tests.
    """
    if not layer_sizes:
        raise ValidationError("need at least one layer")
    rng = as_rng(seed)
    net = FlowNetwork(name=f"layered-{'x'.join(map(str, layer_sizes))}")
    layers: list[list[Node]] = [["s"]]
    for i, size in enumerate(layer_sizes):
        layers.append([f"l{i}_{j}" for j in range(size)])
    layers.append(["t"])
    for a_layer, b_layer in zip(layers, layers[1:]):
        for a in a_layer:
            chosen = [b for b in b_layer if rng.random() < density]
            if not chosen:
                chosen = [b_layer[int(rng.integers(0, len(b_layer)))]]
            for b in chosen:
                net.add_link(a, b, _random_capacity(rng, max_capacity), _random_probability(rng, p_range))
        # force in-degree >= 1 for each b
        for b in b_layer:
            if not net.in_links(b):
                a = a_layer[int(rng.integers(0, len(a_layer)))]
                net.add_link(a, b, _random_capacity(rng, max_capacity), _random_probability(rng, p_range))
    return net
