"""Network validation helpers.

:func:`validate_network` performs the structural checks every algorithm
entry point relies on, producing a list of human-readable problems (or
raising, via ``strict=True``).  Keeping validation separate from the
data structure lets :class:`~repro.graph.FlowNetwork` stay permissive
while algorithm entry points stay strict.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.graph.connectivity import has_directed_path, has_path
from repro.graph.network import FlowNetwork, Node

__all__ = ["validate_network", "validate_terminals"]


def validate_network(net: FlowNetwork, *, strict: bool = False) -> list[str]:
    """Check capacities, probabilities and basic sanity.

    Returns the list of problems found (empty when valid).  With
    ``strict=True`` raises :class:`ValidationError` on the first
    problem instead.
    """
    problems: list[str] = []

    def report(message: str) -> None:
        if strict:
            raise ValidationError(message)
        problems.append(message)

    for link in net.links():
        if link.capacity < 0:
            report(f"link {link.index} has negative capacity {link.capacity}")
        if not (0.0 <= link.failure_probability < 1.0):
            report(
                f"link {link.index} has failure probability "
                f"{link.failure_probability} outside [0, 1)"
            )
        if link.tail == link.head:
            report(f"link {link.index} is a self-loop and can carry no s-t flow")
        if link.capacity == 0:
            report(f"link {link.index} has zero capacity (dead weight)")
    return problems


def validate_terminals(
    net: FlowNetwork, source: Node, sink: Node, *, require_path: bool = False
) -> None:
    """Raise :class:`ValidationError` for unusable terminals.

    ``require_path=True`` additionally demands a direction-respecting
    s-t path in the all-alive network (otherwise reliability is
    trivially zero, which some callers prefer to reject loudly).
    """
    if not net.has_node(source):
        raise ValidationError(f"source {source!r} is not in the network")
    if not net.has_node(sink):
        raise ValidationError(f"sink {sink!r} is not in the network")
    if source == sink:
        raise ValidationError("source and sink must differ")
    if require_path and not has_directed_path(net, source, sink):
        raise ValidationError(
            "no directed path joins the terminals even with all links alive"
        )
