"""Connectivity primitives on :class:`~repro.graph.FlowNetwork`.

All traversals here treat the network as *undirected for connectivity*
purposes (a directed link still joins its endpoints into one component)
unless a function explicitly says otherwise.  That matches the paper's
usage: "connected components obtained by removing bottleneck links" is
about the undirected structure, while flow feasibility respects link
direction and is handled by :mod:`repro.flow`.

Every function takes an optional ``alive`` set/sequence of link indices;
links outside it are treated as failed and ignored.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.exceptions import NodeNotFoundError
from repro.graph.network import FlowNetwork, Node

__all__ = [
    "connected_components",
    "component_of",
    "is_connected",
    "reachable_from",
    "directed_reachable_from",
    "has_path",
    "has_directed_path",
    "bridges",
    "articulation_points",
]


def _alive_set(net: FlowNetwork, alive: Iterable[int] | None) -> set[int] | None:
    if alive is None:
        return None
    return set(alive)


def _undirected_adjacency(
    net: FlowNetwork, alive: set[int] | None
) -> dict[Node, list[tuple[Node, int]]]:
    """Adjacency mapping node -> [(neighbor, link_index)] ignoring direction."""
    adj: dict[Node, list[tuple[Node, int]]] = {node: [] for node in net.nodes()}
    for link in net.links():
        if alive is not None and link.index not in alive:
            continue
        if link.tail == link.head:
            continue
        adj[link.tail].append((link.head, link.index))
        adj[link.head].append((link.tail, link.index))
    return adj


def connected_components(
    net: FlowNetwork, alive: Iterable[int] | None = None
) -> list[set[Node]]:
    """Undirected connected components, as a list of node sets.

    Components are returned in order of their first node's insertion
    order, so the result is deterministic.
    """
    alive_set = _alive_set(net, alive)
    adj = _undirected_adjacency(net, alive_set)
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in net.nodes():
        if start in seen:
            continue
        comp: set[Node] = {start}
        seen.add(start)
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor, _ in adj[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    comp.add(neighbor)
                    queue.append(neighbor)
        components.append(comp)
    return components


def component_of(
    net: FlowNetwork, node: Node, alive: Iterable[int] | None = None
) -> set[Node]:
    """The undirected component containing ``node``."""
    if not net.has_node(node):
        raise NodeNotFoundError(node)
    alive_set = _alive_set(net, alive)
    adj = _undirected_adjacency(net, alive_set)
    comp: set[Node] = {node}
    queue = deque([node])
    while queue:
        current = queue.popleft()
        for neighbor, _ in adj[current]:
            if neighbor not in comp:
                comp.add(neighbor)
                queue.append(neighbor)
    return comp


def is_connected(net: FlowNetwork, alive: Iterable[int] | None = None) -> bool:
    """Whether the whole network is one undirected component.

    The empty network counts as connected.
    """
    if net.num_nodes == 0:
        return True
    return len(connected_components(net, alive)) == 1


def reachable_from(
    net: FlowNetwork, source: Node, alive: Iterable[int] | None = None
) -> set[Node]:
    """Nodes reachable from ``source`` ignoring link direction."""
    return component_of(net, source, alive)


def directed_reachable_from(
    net: FlowNetwork, source: Node, alive: Iterable[int] | None = None
) -> set[Node]:
    """Nodes reachable from ``source`` respecting link direction.

    Undirected links are traversable both ways; zero-capacity links are
    still traversable (reachability is about topology, not rate).
    """
    if not net.has_node(source):
        raise NodeNotFoundError(source)
    alive_set = _alive_set(net, alive)
    seen: set[Node] = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for link in net.out_links(node):
            if alive_set is not None and link.index not in alive_set:
                continue
            other = link.head if link.tail == node else link.tail
            if other not in seen:
                seen.add(other)
                queue.append(other)
    return seen


def has_path(
    net: FlowNetwork, source: Node, target: Node, alive: Iterable[int] | None = None
) -> bool:
    """Whether an undirected path joins ``source`` and ``target``."""
    if not net.has_node(target):
        raise NodeNotFoundError(target)
    return target in component_of(net, source, alive)


def has_directed_path(
    net: FlowNetwork, source: Node, target: Node, alive: Iterable[int] | None = None
) -> bool:
    """Whether a direction-respecting path runs ``source`` to ``target``."""
    if not net.has_node(target):
        raise NodeNotFoundError(target)
    return target in directed_reachable_from(net, source, alive)


def bridges(net: FlowNetwork, alive: Iterable[int] | None = None) -> list[int]:
    """All bridge links (undirected sense), by Tarjan's low-link DFS.

    A bridge is a link whose removal increases the number of undirected
    components.  Parallel links between the same pair of nodes are never
    bridges; the implementation distinguishes parallel links by index,
    not by endpoint pair, so this is handled correctly.

    Returns link indices in ascending order.
    """
    alive_set = _alive_set(net, alive)
    adj = _undirected_adjacency(net, alive_set)
    index_of: dict[Node, int] = {}
    low: dict[Node, int] = {}
    result: list[int] = []
    counter = 0

    for root in net.nodes():
        if root in index_of:
            continue
        # Iterative DFS to survive deep graphs.
        stack: list[tuple[Node, int, int]] = [(root, -1, 0)]  # (node, via_link, child_pos)
        order: list[tuple[Node, int]] = []
        index_of[root] = counter
        low[root] = counter
        counter += 1
        while stack:
            node, via_link, pos = stack.pop()
            if pos < len(adj[node]):
                stack.append((node, via_link, pos + 1))
                neighbor, link_index = adj[node][pos]
                if link_index == via_link:
                    continue
                if neighbor in index_of:
                    low[node] = min(low[node], index_of[neighbor])
                else:
                    index_of[neighbor] = counter
                    low[neighbor] = counter
                    counter += 1
                    stack.append((neighbor, link_index, 0))
                    order.append((neighbor, link_index))
            else:
                # Post-order: propagate low to parent and test bridge.
                if via_link >= 0:
                    parent = net.link(via_link).other_endpoint(node)
                    low[parent] = min(low[parent], low[node])
                    if low[node] > index_of[parent]:
                        result.append(via_link)
    return sorted(result)


def articulation_points(net: FlowNetwork, alive: Iterable[int] | None = None) -> set[Node]:
    """Nodes whose removal disconnects their undirected component."""
    alive_set = _alive_set(net, alive)
    adj = _undirected_adjacency(net, alive_set)
    disc: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Node | None] = {}
    points: set[Node] = set()
    counter = 0

    for root in net.nodes():
        if root in disc:
            continue
        parent[root] = None
        root_children = 0
        # Stack entries: (node, link used to reach node or -1, child cursor).
        stack: list[tuple[Node, int, int]] = [(root, -1, 0)]
        disc[root] = low[root] = counter
        counter += 1
        while stack:
            node, via_link, pos = stack.pop()
            if pos < len(adj[node]):
                stack.append((node, via_link, pos + 1))
                neighbor, link_index = adj[node][pos]
                if link_index == via_link:
                    continue  # do not re-walk the tree edge (parallels are fine)
                if neighbor not in disc:
                    parent[neighbor] = node
                    if node == root:
                        root_children += 1
                    disc[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append((neighbor, link_index, 0))
                else:
                    low[node] = min(low[node], disc[neighbor])
            else:
                p = parent.get(node)
                if p is not None:
                    low[p] = min(low[p], low[node])
                    if p != root and low[node] >= disc[p]:
                        points.add(p)
        if root_children >= 2:
            points.add(root)
    return points
