"""Named builders for the concrete networks used in the paper.

Each function reconstructs one of the worked examples / figures of
Fujita (IPDPSW 2017) as a :class:`~repro.graph.FlowNetwork`, with the
link numbering documented so that tests and benchmarks can refer to the
paper's ``e_i`` labels.  Where the paper's figure does not pin down every
capacity, the builder chooses values that reproduce the *behaviour* the
text describes (e.g. the three realized assignment sets of Fig. 5) and
the docstring says exactly what was chosen.
"""

from __future__ import annotations

from repro.exceptions import ReproValueError
from repro.graph.network import FlowNetwork

__all__ = [
    "diamond",
    "parallel_links",
    "series_chain",
    "fujita_fig2_bridge",
    "fujita_fig4",
    "two_paths",
    "grid_network",
]


def diamond(
    capacity: int = 1,
    failure_probability: float = 0.1,
    *,
    cross_link: bool = False,
) -> FlowNetwork:
    """The 4-link diamond ``s -> {a, b} -> t`` used for Fig. 1-style
    naive-enumeration illustrations.

    Every link gets the same ``capacity`` and ``failure_probability``.
    With ``cross_link=True`` a fifth link ``a -> b`` is added, producing
    the classic "bridge network" of reliability textbooks.

    Link order: ``s->a, s->b, a->t, b->t`` (then ``a->b`` if requested).
    """
    net = FlowNetwork(name="diamond")
    for tail, head in [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")]:
        net.add_link(tail, head, capacity, failure_probability)
    if cross_link:
        net.add_link("a", "b", capacity, failure_probability)
    return net


def parallel_links(
    count: int,
    capacity: int = 1,
    failure_probability: float = 0.1,
) -> FlowNetwork:
    """``count`` parallel links from ``s`` straight to ``t``.

    The simplest network with a closed-form reliability: the demand
    ``d`` is met iff the total alive capacity reaches ``d``.
    """
    net = FlowNetwork(name=f"parallel-{count}")
    net.add_node("s")
    net.add_node("t")
    for _ in range(count):
        net.add_link("s", "t", capacity, failure_probability)
    return net


def series_chain(
    length: int,
    capacity: int = 1,
    failure_probability: float = 0.1,
) -> FlowNetwork:
    """A path ``s -> v1 -> ... -> t`` of ``length`` links.

    Reliability for any demand ``d <= capacity`` is the product of the
    link availabilities; every internal link is a bridge.
    """
    if length < 1:
        raise ReproValueError("series_chain needs length >= 1")
    net = FlowNetwork(name=f"chain-{length}")
    nodes = ["s"] + [f"v{i}" for i in range(1, length)] + ["t"]
    for tail, head in zip(nodes, nodes[1:]):
        net.add_link(tail, head, capacity, failure_probability)
    return net


def two_paths(
    upper_capacity: int = 2,
    lower_capacity: int = 1,
    failure_probability: float = 0.1,
) -> FlowNetwork:
    """Two internally-disjoint 2-hop s-t paths with different capacities.

    Link order: ``s->a, a->t`` (upper path), ``s->b, b->t`` (lower).
    Useful for exercising demands that need both paths simultaneously.
    """
    net = FlowNetwork(name="two-paths")
    net.add_link("s", "a", upper_capacity, failure_probability)
    net.add_link("a", "t", upper_capacity, failure_probability)
    net.add_link("s", "b", lower_capacity, failure_probability)
    net.add_link("b", "t", lower_capacity, failure_probability)
    return net


def fujita_fig2_bridge(
    bridge_capacity: int = 2,
    side_capacity: int = 1,
    failure_probability: float = 0.1,
    bridge_failure_probability: float | None = None,
) -> FlowNetwork:
    """The Fig. 2 graph: two diamonds joined by a single bridge link.

    ``G_s`` is the diamond ``s -> {a, b} -> x``; ``G_t`` is the diamond
    ``y -> {c, d} -> t``; the red bridge is ``x -> y``.  As in the figure
    the bridge is the ninth link: indices 0-3 are the ``G_s`` links,
    4-7 the ``G_t`` links and **8 is the bridge** (the paper's ``e_9``).

    The default capacities admit a demand of up to 2 (each diamond can
    carry 2 across its two disjoint branches, the bridge carries 2).
    """
    if bridge_failure_probability is None:
        bridge_failure_probability = failure_probability
    net = FlowNetwork(name="fujita-fig2")
    for tail, head in [("s", "a"), ("s", "b"), ("a", "x"), ("b", "x")]:
        net.add_link(tail, head, side_capacity, failure_probability)
    for tail, head in [("y", "c"), ("y", "d"), ("c", "t"), ("d", "t")]:
        net.add_link(tail, head, side_capacity, failure_probability)
    net.add_link("x", "y", bridge_capacity, bridge_failure_probability)
    return net


def fujita_fig4(failure_probability: float = 0.1) -> FlowNetwork:
    """The Fig. 4 / Example 3 graph: nine links, two bottleneck links.

    The figure fixes the *shape* (two bottleneck links ``e_1 = x1->y1``
    and ``e_2 = x2->y2`` splitting the graph into a source side and a
    sink side, nine links overall, demand ``d = 2``, assignment set
    ``{(2,0), (1,1), (0,2)}``) without listing every capacity.  This
    reconstruction chooses capacities that reproduce the three failure
    configurations of Fig. 5 exactly:

    * all links alive realizes ``{(2,0), (1,1), (0,2)}`` (Fig. 5c);
    * killing ``e_4`` realizes ``{(1,1), (0,2)}`` (Fig. 5a);
    * killing ``e_4`` and ``e_6`` realizes ``{(1,1)}`` (Fig. 5b).

    Link numbering (0-based index -> paper label):

    ======  ==========  ========
    index   paper       link
    ======  ==========  ========
    0       ``e_1``     ``x1 -> y1``, capacity 2   (bottleneck)
    1       ``e_2``     ``x2 -> y2``, capacity 2   (bottleneck)
    2       ``e_3``     ``s -> x1``, capacity 1
    3       ``e_4``     ``s -> x1``, capacity 1    (parallel)
    4       ``e_5``     ``s -> x2``, capacity 1
    5       ``e_6``     ``s -> x2``, capacity 1    (parallel)
    6       ``e_7``     ``y1 -> t``, capacity 1
    7       ``e_8``     ``y2 -> t``, capacity 2
    8       ``e_9``     ``y1 -> y2``, capacity 1
    ======  ==========  ========

    ``G_s`` is spanned by links 2-5, ``G_t`` by links 6-8.
    """
    net = FlowNetwork(name="fujita-fig4")
    p = failure_probability
    net.add_link("x1", "y1", 2, p)  # e1 (bottleneck)
    net.add_link("x2", "y2", 2, p)  # e2 (bottleneck)
    net.add_link("s", "x1", 1, p)  # e3
    net.add_link("s", "x1", 1, p)  # e4
    net.add_link("s", "x2", 1, p)  # e5
    net.add_link("s", "x2", 1, p)  # e6
    net.add_link("y1", "t", 1, p)  # e7
    net.add_link("y2", "t", 2, p)  # e8
    net.add_link("y1", "y2", 1, p)  # e9
    return net


def grid_network(
    rows: int,
    cols: int,
    capacity: int = 1,
    failure_probability: float = 0.1,
) -> FlowNetwork:
    """A directed ``rows x cols`` grid with a source feeding the first
    column and a sink drained by the last column.

    Links run rightwards along rows and downwards along columns; a
    virtual source ``s`` feeds every node of column 0 and every node of
    the last column feeds a virtual sink ``t``.  A standard stress shape
    for max-flow solvers and cut enumeration.
    """
    if rows < 1 or cols < 1:
        raise ReproValueError("grid_network needs rows >= 1 and cols >= 1")
    net = FlowNetwork(name=f"grid-{rows}x{cols}")
    for r in range(rows):
        net.add_link("s", (r, 0), capacity, failure_probability)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.add_link((r, c), (r, c + 1), capacity, failure_probability)
            if r + 1 < rows:
                net.add_link((r, c), (r + 1, c), capacity, failure_probability)
    for r in range(rows):
        net.add_link((r, cols - 1), "t", capacity, failure_probability)
    return net
