"""The :class:`FlowNetwork` data structure.

A flow network in the sense of the paper: a graph whose links each carry
an integer *capacity* ``c(e)`` (the bit-rate the link can sustain) and an
independent *failure probability* ``p(e) in [0, 1)``.  Links may be
directed (a one-way delivery hop, the common case for streaming) or
undirected (capacity usable in either direction; the link still fails as
a single unit).

The structure is deliberately simple and index-based: links are stored in
a list and identified by their integer index.  Every reliability
algorithm in :mod:`repro.core` enumerates *failure configurations* as
bitmasks over these indices, so stable integer identities are the one
property everything else relies on.

Example
-------
>>> net = FlowNetwork()
>>> net.add_node("s"); net.add_node("t")
's'
't'
>>> e = net.add_link("s", "t", capacity=3, failure_probability=0.1)
>>> net.link(e).capacity
3
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import LinkNotFoundError, NodeNotFoundError, ReproValueError, ValidationError

Node = Hashable

__all__ = ["Link", "FlowNetwork", "Node"]


@dataclass(frozen=True)
class Link:
    """One link of a :class:`FlowNetwork`.

    Attributes
    ----------
    index:
        Position of the link in the network's link list.  This is the
        bit position used in failure-configuration bitmasks.
    tail, head:
        Endpoint nodes.  For directed links flow may only travel
        ``tail -> head``; for undirected links the orientation is just a
        canonical storage order.
    capacity:
        Non-negative integer bit-rate the link can carry.
    failure_probability:
        Probability in ``[0, 1)`` that the link is *down*, independent of
        all other links.
    directed:
        Whether the link is one-way.
    """

    index: int
    tail: Node
    head: Node
    capacity: int
    failure_probability: float
    directed: bool = True

    @property
    def availability(self) -> float:
        """Probability the link is up: ``1 - failure_probability``."""
        return 1.0 - self.failure_probability

    @property
    def endpoints(self) -> tuple[Node, Node]:
        """The ``(tail, head)`` pair."""
        return (self.tail, self.head)

    def other_endpoint(self, node: Node) -> Node:
        """Return the endpoint that is not ``node``.

        Raises :class:`ValueError` if ``node`` is not an endpoint.  For
        self-loops (``tail == head``) the node itself is returned.
        """
        if node == self.tail:
            return self.head
        if node == self.head:
            return self.tail
        raise ReproValueError(f"{node!r} is not an endpoint of link {self.index}")

    def reversed(self) -> "Link":
        """A copy of this link with tail and head swapped."""
        return replace(self, tail=self.head, head=self.tail)


@dataclass
class FlowNetwork:
    """A capacitated network with per-link failure probabilities.

    Nodes may be any hashable value.  Links are created with
    :meth:`add_link` and afterwards addressed by integer index.
    Parallel links and antiparallel link pairs are allowed; self-loops
    are allowed but contribute nothing to any s-t flow.
    """

    name: str = ""
    _nodes: dict[Node, None] = field(default_factory=dict)  # insertion-ordered set
    _links: list[Link] = field(default_factory=list)
    _out: dict[Node, list[int]] = field(default_factory=dict)
    _in: dict[Node, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add ``node`` (idempotent) and return it."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._out[node] = []
            self._in[node] = []
        return node

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_link(
        self,
        tail: Node,
        head: Node,
        capacity: int,
        failure_probability: float = 0.0,
        *,
        directed: bool = True,
    ) -> int:
        """Add a link and return its index.

        Endpoints are added implicitly.  Capacity must be a non-negative
        integer; the failure probability must lie in ``[0, 1)`` (a link
        that fails surely would carry no information and is rejected to
        keep probability bookkeeping honest — model it by omission).
        """
        if capacity < 0 or int(capacity) != capacity:
            raise ValidationError(f"capacity must be a non-negative integer, got {capacity!r}")
        if not (0.0 <= failure_probability < 1.0):
            raise ValidationError(
                f"failure probability must be in [0, 1), got {failure_probability!r}"
            )
        self.add_node(tail)
        self.add_node(head)
        index = len(self._links)
        link = Link(
            index=index,
            tail=tail,
            head=head,
            capacity=int(capacity),
            failure_probability=float(failure_probability),
            directed=directed,
        )
        self._links.append(link)
        self._out[tail].append(index)
        self._in[head].append(index)
        if not directed:
            self._out[head].append(index)
            self._in[tail].append(index)
        return index

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Number of links ``|E|``."""
        return len(self._links)

    def nodes(self) -> list[Node]:
        """All nodes in insertion order."""
        return list(self._nodes)

    def links(self) -> list[Link]:
        """All links in index order (a copy of the list)."""
        return list(self._links)

    def link(self, index: int) -> Link:
        """The link with the given index."""
        try:
            return self._links[index]
        except (IndexError, TypeError) as exc:
            raise LinkNotFoundError(index) from exc

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the network."""
        return node in self._nodes

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def _require_node(self, node: Node) -> None:
        if node not in self._nodes:
            raise NodeNotFoundError(node)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_links(self, node: Node) -> list[Link]:
        """Links usable *leaving* ``node`` (undirected links included)."""
        self._require_node(node)
        return [self._links[i] for i in self._out[node]]

    def in_links(self, node: Node) -> list[Link]:
        """Links usable *entering* ``node`` (undirected links included)."""
        self._require_node(node)
        return [self._links[i] for i in self._in[node]]

    def incident_links(self, node: Node) -> list[Link]:
        """All links with ``node`` as an endpoint, without duplicates."""
        self._require_node(node)
        seen: set[int] = set()
        result: list[Link] = []
        for i in self._out[node] + self._in[node]:
            if i not in seen:
                seen.add(i)
                result.append(self._links[i])
        return result

    def neighbors(self, node: Node) -> list[Node]:
        """Nodes reachable from ``node`` along a single usable link."""
        self._require_node(node)
        seen: set[Node] = set()
        result: list[Node] = []
        for i in self._out[node]:
            link = self._links[i]
            other = link.head if link.tail == node else link.tail
            if other not in seen:
                seen.add(other)
                result.append(other)
        return result

    def degree(self, node: Node) -> int:
        """Number of links incident to ``node``."""
        return len(self.incident_links(node))

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def capacities(self) -> list[int]:
        """Capacity of each link, in index order."""
        return [link.capacity for link in self._links]

    def failure_probabilities(self) -> list[float]:
        """Failure probability of each link, in index order."""
        return [link.failure_probability for link in self._links]

    def total_capacity(self, links: Iterable[int] | None = None) -> int:
        """Total capacity of the given link indices (default: all links)."""
        if links is None:
            return sum(link.capacity for link in self._links)
        return sum(self.link(i).capacity for i in links)

    def with_failure_probabilities(self, probabilities: Mapping[int, float] | Sequence[float]) -> "FlowNetwork":
        """A copy of this network with failure probabilities replaced.

        ``probabilities`` is either a full sequence (one value per link,
        in index order) or a mapping from link index to new value;
        unmapped links keep their probability.
        """
        if isinstance(probabilities, Mapping):
            table = {int(k): float(v) for k, v in probabilities.items()}
        else:
            if len(probabilities) != self.num_links:
                raise ValidationError(
                    f"expected {self.num_links} probabilities, got {len(probabilities)}"
                )
            table = {i: float(p) for i, p in enumerate(probabilities)}
        clone = FlowNetwork(name=self.name)
        clone.add_nodes(self._nodes)
        for link in self._links:
            clone.add_link(
                link.tail,
                link.head,
                link.capacity,
                table.get(link.index, link.failure_probability),
                directed=link.directed,
            )
        return clone

    def copy(self) -> "FlowNetwork":
        """A structural copy (links keep their indices)."""
        return self.with_failure_probabilities({})

    # ------------------------------------------------------------------
    # dunder / debugging
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<FlowNetwork{label}: {self.num_nodes} nodes, {self.num_links} links>"

    def describe(self) -> str:
        """A multi-line human-readable description of the network."""
        lines = [f"FlowNetwork {self.name!r}: |V|={self.num_nodes} |E|={self.num_links}"]
        for link in self._links:
            arrow = "->" if link.directed else "--"
            lines.append(
                f"  e{link.index}: {link.tail!r} {arrow} {link.head!r}"
                f"  c={link.capacity}  p={link.failure_probability:.4g}"
            )
        return "\n".join(lines)
