"""Node failures via the node-splitting transformation.

The paper's model only lets *links* fail, but the P2P reality is that
*peers* fail — taking all their incident links down together, a
correlation the independent-link mapping ignores.  The classic exact
fix: split every fallible node ``v`` into ``v·in -> v·out`` joined by an
internal link that carries ``v``'s failure probability; links into ``v``
re-target ``v·in`` and links out of ``v`` re-source ``v·out``.  Link
failures of the original network are kept as they are.  Flow through
``v`` then exists iff ``v``'s internal link is alive — i.e. node
failures become ordinary link failures, *exactly*.

With this transformation every exact algorithm in :mod:`repro.core`
computes correlated peer-level reliability — cross-validated against
the :func:`repro.p2p.simulation.peer_level_reliability` sampler in the
tests and benchmark X6.

Only directed networks are supported: an undirected link would need its
two directions to fail as a unit, which the per-link failure model
cannot express after splitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ValidationError
from repro.graph.network import FlowNetwork, Node

__all__ = ["NodeSplit", "split_nodes"]


@dataclass(frozen=True)
class NodeSplit:
    """Result of :func:`split_nodes`.

    Attributes
    ----------
    network:
        The transformed network (only link failures).
    entry, exit:
        Mappings from original nodes to their in/out representatives
        (identity for nodes that were not split).
    node_link:
        Original node -> index of its internal link (only split nodes).
    original_link_map:
        Transformed link index -> original link index (internal links
        are absent).
    """

    network: FlowNetwork
    entry: dict[Node, Node]
    exit: dict[Node, Node]
    node_link: dict[Node, int]
    original_link_map: dict[int, int]

    def terminal(self, node: Node, *, role: str) -> Node:
        """The transformed node to use as a terminal.

        A split source must inject at its ``exit`` side (its own
        survival still gates the flow through the internal link when
        ``role='source_gated'`` is not wanted — see ``split_nodes``
        notes); a split sink drains at its ``entry`` side.
        """
        if role == "source":
            return self.exit[node]
        if role == "sink":
            return self.entry[node]
        raise ValidationError(f"role must be 'source' or 'sink', got {role!r}")


def split_nodes(
    net: FlowNetwork,
    failure_probabilities: Mapping[Node, float],
    *,
    internal_capacity: int | None = None,
) -> NodeSplit:
    """Transform node failures into link failures.

    Parameters
    ----------
    net:
        A directed network (undirected links are rejected).
    failure_probabilities:
        Per-node failure probability; nodes absent from the mapping (or
        mapped to 0) are reliable and left unsplit.
    internal_capacity:
        Capacity of each internal link.  Default: the node's total
        incident capacity (never a bottleneck beyond what the node
        could carry anyway).

    Terminal semantics: if the *source* or *sink* itself is fallible,
    its internal link participates like any other — the demand then
    requires the terminal to be up, matching
    ``peer_level_reliability(..., require_subscriber_online=True)``.
    Callers that want the subscriber's own churn excluded should simply
    not list it in ``failure_probabilities``.
    """
    for link in net.links():
        if not link.directed:
            raise ValidationError(
                "node splitting requires directed links "
                f"(link {link.index} is undirected)"
            )
    for node, p in failure_probabilities.items():
        if not net.has_node(node):
            raise ValidationError(f"unknown node {node!r} in failure mapping")
        if not (0.0 <= p < 1.0):
            raise ValidationError(f"node failure probability {p} outside [0, 1)")

    split = {
        node: p for node, p in failure_probabilities.items() if p > 0.0
    }
    out = FlowNetwork(name=f"{net.name}|nodesplit")
    entry: dict[Node, Node] = {}
    exit_: dict[Node, Node] = {}
    node_link: dict[Node, int] = {}

    for node in net.nodes():
        if node in split:
            entry[node] = (node, "in")
            exit_[node] = (node, "out")
            out.add_node(entry[node])
            out.add_node(exit_[node])
        else:
            entry[node] = node
            exit_[node] = node
            out.add_node(node)

    # Internal links first so their indices are stable and documented.
    for node, p in split.items():
        if internal_capacity is None:
            capacity = sum(l.capacity for l in net.incident_links(node))
            capacity = max(capacity, 1)
        else:
            capacity = internal_capacity
        node_link[node] = out.add_link(entry[node], exit_[node], capacity, p)

    original_link_map: dict[int, int] = {}
    for link in net.links():
        new_index = out.add_link(
            exit_[link.tail],
            entry[link.head],
            link.capacity,
            link.failure_probability,
        )
        original_link_map[new_index] = link.index

    return NodeSplit(
        network=out,
        entry=entry,
        exit=exit_,
        node_link=node_link,
        original_link_map=original_link_map,
    )
