"""Serialization of :class:`~repro.graph.FlowNetwork` to/from plain data.

The on-disk format is deliberately boring JSON so that instances can be
checked into a repo, diffed and loaded from any language:

.. code-block:: json

    {
      "name": "diamond",
      "nodes": ["s", "a", "b", "t"],
      "links": [
        {"tail": "s", "head": "a", "capacity": 1,
         "failure_probability": 0.1, "directed": true}
      ]
    }

Only JSON-representable node labels round-trip exactly; tuple labels
(used by the grid builder) are encoded as lists and decoded back to
tuples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import ValidationError
from repro.graph.network import FlowNetwork

__all__ = ["to_dict", "from_dict", "dumps", "loads", "save", "load"]


def _encode_node(node: Any) -> Any:
    if isinstance(node, tuple):
        return {"__tuple__": [_encode_node(x) for x in node]}
    return node


def _decode_node(data: Any) -> Any:
    if isinstance(data, dict) and "__tuple__" in data:
        return tuple(_decode_node(x) for x in data["__tuple__"])
    if isinstance(data, list):
        return tuple(_decode_node(x) for x in data)
    return data


def to_dict(net: FlowNetwork) -> dict[str, Any]:
    """A JSON-ready dict capturing the full network."""
    return {
        "name": net.name,
        "nodes": [_encode_node(node) for node in net.nodes()],
        "links": [
            {
                "tail": _encode_node(link.tail),
                "head": _encode_node(link.head),
                "capacity": link.capacity,
                "failure_probability": link.failure_probability,
                "directed": link.directed,
            }
            for link in net.links()
        ],
    }


def from_dict(data: dict[str, Any]) -> FlowNetwork:
    """Rebuild a network from :func:`to_dict` output.

    Link indices are preserved (links are re-added in order).
    """
    if "links" not in data:
        raise ValidationError("network dict is missing the 'links' key")
    net = FlowNetwork(name=data.get("name", ""))
    for node in data.get("nodes", []):
        net.add_node(_decode_node(node))
    for entry in data["links"]:
        try:
            net.add_link(
                _decode_node(entry["tail"]),
                _decode_node(entry["head"]),
                entry["capacity"],
                entry.get("failure_probability", 0.0),
                directed=entry.get("directed", True),
            )
        except KeyError as exc:
            raise ValidationError(f"link entry missing required key: {exc}") from exc
    return net


def dumps(net: FlowNetwork, *, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(net), indent=indent, sort_keys=False)


def loads(text: str) -> FlowNetwork:
    """Parse a network from a JSON string."""
    return from_dict(json.loads(text))


def save(net: FlowNetwork, path: str | Path) -> None:
    """Write the network to ``path`` as JSON."""
    Path(path).write_text(dumps(net), encoding="utf-8")


def load(path: str | Path) -> FlowNetwork:
    """Read a network from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))
