"""Network transforms: alive-subgraphs, side splits, restrictions.

The bottleneck algorithm never materialises per-configuration
subnetworks (it masks links inside the max-flow solver instead), but
the naive reference implementation, the test oracles and the P2P
tooling all want honest subgraph objects, built here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import DecompositionError
from repro.graph.connectivity import connected_components
from repro.graph.network import FlowNetwork, Link, Node

__all__ = ["SubnetworkView", "alive_subnetwork", "induced_subnetwork", "SideSplit", "split_on_cut"]


@dataclass(frozen=True)
class SubnetworkView:
    """A subnetwork together with the index mapping back to its parent.

    ``network`` is a standalone :class:`FlowNetwork`; ``link_map[i]`` is
    the parent index of the subnetwork's link ``i``.
    """

    network: FlowNetwork
    link_map: tuple[int, ...]

    def parent_index(self, sub_index: int) -> int:
        """Parent link index for a subnetwork link index."""
        return self.link_map[sub_index]


def alive_subnetwork(net: FlowNetwork, alive: Iterable[int]) -> SubnetworkView:
    """The subnetwork keeping all nodes but only the ``alive`` links."""
    alive_sorted = sorted(set(alive))
    sub = FlowNetwork(name=f"{net.name}|alive")
    sub.add_nodes(net.nodes())
    link_map: list[int] = []
    for index in alive_sorted:
        link = net.link(index)
        sub.add_link(
            link.tail, link.head, link.capacity, link.failure_probability, directed=link.directed
        )
        link_map.append(index)
    return SubnetworkView(network=sub, link_map=tuple(link_map))


def induced_subnetwork(net: FlowNetwork, nodes: Iterable[Node]) -> SubnetworkView:
    """The subnetwork induced by ``nodes``: those nodes plus every link
    with both endpoints among them."""
    node_set = set(nodes)
    sub = FlowNetwork(name=f"{net.name}|induced")
    for node in net.nodes():
        if node in node_set:
            sub.add_node(node)
    link_map: list[int] = []
    for link in net.links():
        if link.tail in node_set and link.head in node_set:
            sub.add_link(
                link.tail, link.head, link.capacity, link.failure_probability, directed=link.directed
            )
            link_map.append(link.index)
    return SubnetworkView(network=sub, link_map=tuple(link_map))


@dataclass(frozen=True)
class SideSplit:
    """The result of splitting a network on a bottleneck link set.

    Attributes
    ----------
    cut:
        The bottleneck link indices, in the order supplied by the
        caller.  Assignment tuples index into this order.
    source_side, sink_side:
        :class:`SubnetworkView` for ``G_s`` and ``G_t``.
    source_ports:
        For each cut link, its endpoint inside ``G_s`` (the paper's
        ``x_i``).
    sink_ports:
        For each cut link, its endpoint inside ``G_t`` (the ``y_i``).
    """

    cut: tuple[int, ...]
    source_side: SubnetworkView
    sink_side: SubnetworkView
    source_ports: tuple[Node, ...]
    sink_ports: tuple[Node, ...]

    @property
    def alpha(self) -> float:
        """The achieved split ratio ``max(|E_s|, |E_t|) / |E|``.

        ``|E|`` counts all links of the parent network including the cut
        links themselves, matching the paper's ``alpha |E|`` bound.
        """
        total = (
            len(self.source_side.link_map)
            + len(self.sink_side.link_map)
            + len(self.cut)
        )
        if total == 0:
            return 0.0
        return max(len(self.source_side.link_map), len(self.sink_side.link_map)) / total


def split_on_cut(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    cut: Sequence[int],
) -> SideSplit:
    """Split ``net`` into ``G_s`` / ``G_t`` on the given cut links.

    Verifies the structural requirements of the paper's Section III-A:
    removing the cut must separate ``source`` from ``sink`` and leave
    **exactly two** connected components, one holding each terminal
    (isolated leftover nodes with no remaining links are tolerated and
    assigned to neither side — they cannot carry flow).  Each cut link
    must join the two sides.  Raises :class:`DecompositionError`
    otherwise.
    """
    cut_set = set(cut)
    if len(cut_set) != len(cut):
        raise DecompositionError("cut contains duplicate link indices")
    alive = [link.index for link in net.links() if link.index not in cut_set]
    components = connected_components(net, alive)
    nonsingleton = [c for c in components if len(c) > 1]

    s_comp = next((c for c in components if source in c), None)
    t_comp = next((c for c in components if sink in c), None)
    if s_comp is None or t_comp is None:
        raise DecompositionError("terminals missing from the network")
    if s_comp is t_comp:
        raise DecompositionError("removing the cut does not separate the terminals")
    meaningful = [c for c in nonsingleton if c not in (s_comp, t_comp)]
    if meaningful:
        raise DecompositionError(
            "removing the cut leaves more than two non-trivial components; "
            "a minimal bottleneck set would leave exactly two"
        )

    source_ports: list[Node] = []
    sink_ports: list[Node] = []
    for index in cut:
        link = net.link(index)
        if link.tail in s_comp and link.head in t_comp:
            source_ports.append(link.tail)
            sink_ports.append(link.head)
        elif link.tail in t_comp and link.head in s_comp:
            if link.directed:
                raise DecompositionError(
                    f"cut link {index} is directed from the sink side to the "
                    "source side and can never carry demand flow"
                )
            source_ports.append(link.head)
            sink_ports.append(link.tail)
        else:
            raise DecompositionError(
                f"cut link {index} does not join the two sides (not minimal?)"
            )

    return SideSplit(
        cut=tuple(cut),
        source_side=induced_subnetwork(net, s_comp),
        sink_side=induced_subnetwork(net, t_comp),
        source_ports=tuple(source_ports),
        sink_ports=tuple(sink_ports),
    )
