"""Minimal s-t cut enumeration and α-bottleneck discovery.

The paper assumes a set of *α-bottleneck links* is known: a minimal s-t
disconnecting link set of constant size whose removal leaves exactly two
connected components, each holding at most ``α|E|`` links.  This module
finds such sets:

* :func:`bridges_between` — the ``k = 1`` fast path via Tarjan bridges;
* :func:`minimal_st_cuts` — exhaustive enumeration of minimal cuts up to
  a size bound (combinatorial in the bound, fine for the constant ``k``
  the paper assumes);
* :func:`minimum_cardinality_cut` — one smallest cut via unit-capacity
  max-flow (Menger), used to seed / lower-bound the search;
* :func:`find_bottleneck` — picks the admissible cut minimising the
  achieved α.

Separation is *undirected*: the paper's components are connected
components of the link-removal graph, independent of link direction.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.exceptions import DecompositionError
from repro.graph.connectivity import bridges, component_of, has_path
from repro.graph.network import FlowNetwork, Node
from repro.graph.transforms import SideSplit, split_on_cut

__all__ = [
    "is_disconnecting",
    "is_minimal_cut",
    "bridges_between",
    "minimum_cardinality_cut",
    "minimal_st_cuts",
    "find_bottleneck",
    "verify_bottleneck",
]


def is_disconnecting(
    net: FlowNetwork, source: Node, sink: Node, cut: Iterable[int]
) -> bool:
    """Whether removing ``cut`` separates the terminals (undirected)."""
    cut_set = set(cut)
    alive = [link.index for link in net.links() if link.index not in cut_set]
    return not has_path(net, source, sink, alive)


def is_minimal_cut(
    net: FlowNetwork, source: Node, sink: Node, cut: Sequence[int]
) -> bool:
    """Whether ``cut`` disconnects s and t and no proper subset does."""
    cut_list = list(dict.fromkeys(cut))
    if len(cut_list) != len(cut):
        return False
    if not is_disconnecting(net, source, sink, cut_list):
        return False
    for index in cut_list:
        reduced = [c for c in cut_list if c != index]
        if is_disconnecting(net, source, sink, reduced):
            return False
    return True


def bridges_between(net: FlowNetwork, source: Node, sink: Node) -> list[int]:
    """Bridge links that actually separate ``source`` from ``sink``.

    A bridge separates its component into two; only bridges whose two
    sides contain one terminal each are s-t cuts of size one.
    """
    result = []
    for index in bridges(net):
        if is_disconnecting(net, source, sink, [index]):
            result.append(index)
    return result


def minimum_cardinality_cut(
    net: FlowNetwork, source: Node, sink: Node
) -> list[int] | None:
    """One minimum-cardinality s-t *undirected* cut, via Menger/max-flow.

    Every link is given unit capacity and made traversable both ways
    (undirected separation); the min cut of that auxiliary problem is a
    smallest link set whose removal disconnects the terminals.  Returns
    ``None`` when the terminals are already disconnected, and the empty
    impossibility is reported the same way.
    """
    # Local import: repro.flow depends on repro.graph, not vice versa.
    from repro.flow.dinic import DinicSolver

    if not has_path(net, source, sink):
        return None
    aux = FlowNetwork(name="unit-aux")
    aux.add_nodes(net.nodes())
    for link in net.links():
        aux.add_link(link.tail, link.head, 1, 0.0, directed=False)
    solver = DinicSolver()
    result = solver.max_flow(aux, source, sink)
    reachable = result.min_cut_source_side
    cut = [
        link.index
        for link in net.links()
        if (link.tail in reachable) != (link.head in reachable)
    ]
    # The crossing set of the max-flow bipartition is disconnecting; prune
    # it down to a minimal subset (it usually already is minimal).
    return _prune_to_minimal(net, source, sink, cut)


def _prune_to_minimal(
    net: FlowNetwork, source: Node, sink: Node, cut: Sequence[int]
) -> list[int]:
    current = list(cut)
    changed = True
    while changed:
        changed = False
        for index in list(current):
            reduced = [c for c in current if c != index]
            if is_disconnecting(net, source, sink, reduced):
                current = reduced
                changed = True
    return sorted(current)


def minimal_st_cuts(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    max_size: int,
    *,
    limit: int | None = None,
) -> list[tuple[int, ...]]:
    """All minimal s-t cuts of size at most ``max_size``.

    Enumerates size classes in increasing order and skips any candidate
    containing an already-found smaller cut (supersets of cuts are never
    minimal).  Cost is ``O(C(|E|, max_size))`` subsets, each checked in
    ``O(|V| + |E|)`` — exactly the "constant k" regime of the paper.

    ``limit`` truncates the result once that many cuts were found.
    """
    if max_size < 1:
        return []
    found: list[tuple[int, ...]] = []
    found_sets: list[frozenset[int]] = []
    indices = [link.index for link in net.links()]
    for size in range(1, max_size + 1):
        for candidate in combinations(indices, size):
            cand_set = frozenset(candidate)
            if any(smaller <= cand_set for smaller in found_sets if len(smaller) < size):
                continue
            if not is_disconnecting(net, source, sink, candidate):
                continue
            # Disconnecting and not a superset of a smaller cut => check
            # strict minimality within its own size class.
            if is_minimal_cut(net, source, sink, candidate):
                found.append(candidate)
                found_sets.append(cand_set)
                if limit is not None and len(found) >= limit:
                    return found
    return found


def verify_bottleneck(
    net: FlowNetwork, source: Node, sink: Node, cut: Sequence[int]
) -> SideSplit:
    """Validate ``cut`` as an α-bottleneck link set and split on it.

    Checks minimality (the paper's condition 1) and the exactly-two-
    components condition (via :func:`split_on_cut`).  Returns the
    :class:`~repro.graph.transforms.SideSplit`.
    """
    if not is_minimal_cut(net, source, sink, cut):
        raise DecompositionError(
            f"links {tuple(cut)} are not a minimal s-t disconnecting set"
        )
    return split_on_cut(net, source, sink, cut)


def find_bottleneck(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    max_size: int = 3,
    max_candidates: int = 256,
) -> SideSplit | None:
    """Find the admissible bottleneck cut with the best (smallest) α.

    Strategy: collect bridge cuts (size 1), the minimum-cardinality cut,
    and every minimal cut up to ``max_size`` (capped at
    ``max_candidates``); keep the candidates whose split satisfies the
    two-component condition; return the one minimising
    ``max(|E_s|, |E_t|)``, breaking ties towards fewer cut links.
    Returns ``None`` when no admissible cut of size <= ``max_size``
    exists (e.g. the terminals are adjacent through many parallel
    links).
    """
    candidates: list[tuple[int, ...]] = []
    seen: set[frozenset[int]] = set()

    def push(cut: Sequence[int]) -> None:
        key = frozenset(cut)
        if key and key not in seen and len(key) <= max_size:
            seen.add(key)
            candidates.append(tuple(sorted(key)))

    for index in bridges_between(net, source, sink):
        push([index])
    smallest = minimum_cardinality_cut(net, source, sink)
    if smallest is not None:
        push(smallest)
    for cut in minimal_st_cuts(net, source, sink, max_size, limit=max_candidates):
        push(cut)

    best: SideSplit | None = None
    best_key: tuple[int, int] | None = None
    for cut in candidates:
        try:
            split = split_on_cut(net, source, sink, cut)
        except DecompositionError:
            continue
        side = max(len(split.source_side.link_map), len(split.sink_side.link_map))
        key = (side, len(cut))
        if best_key is None or key < best_key:
            best, best_key = split, key
    return best
