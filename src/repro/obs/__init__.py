"""repro.obs — tracing, metrics and progress for the reliability kernels.

The paper's headline claim is a *cost separation*
(``|D| 2^{|E_s|} + |D| 2^{|E_t|}`` side-local max-flow solves for the
bottleneck algorithm vs ``2^{|E|}`` naive); this package is how the
repository measures it.  Three layers:

* :mod:`repro.obs.recorder` — the instrumentation core: a
  context-var-scoped :class:`Recorder` with timed :func:`span` context
  managers and typed counters/gauges, collapsing to allocation-free
  no-ops while no recorder is installed;
* :mod:`repro.obs.progress` — :class:`ProgressTicker` heartbeats for
  the exponential loops (rate/ETA callbacks);
* :mod:`repro.obs.export` — text-tree / JSON reporters and the flat
  :func:`phase_summary` that lands in
  ``ReliabilityResult.details["obs"]``.

Quickstart
----------
>>> from repro import compute_reliability
>>> from repro.graph.builders import fujita_fig4
>>> from repro.obs import record, phase_summary
>>> with record() as rec:
...     result = compute_reliability(fujita_fig4(), "s", "t", 2, method="naive")
>>> rec.counter_total("flow_solves") == result.flow_calls
True

Surfaces: ``repro profile`` prints the phase tree for one computation;
``repro compute --trace`` / ``--trace-json FILE`` attach tracing to a
normal run.  See ``docs/OBSERVABILITY.md`` for the span taxonomy and
the counter catalogue.
"""

from __future__ import annotations

from repro.obs.export import format_tree, phase_summary, trace_to_dict, trace_to_json
from repro.obs.ledger import RUN_SCHEMA, RunDiff, RunLedger, diff_records, make_run_record
from repro.obs.progress import ProgressTicker, ProgressUpdate, progress_ticker
from repro.obs.recorder import (
    ARRAY_ENTRIES_BUILT,
    ASSIGNMENTS_ENUMERATED,
    CONFIGURATIONS_ENUMERATED,
    FLOW_SOLVES,
    KNOWN_COUNTERS,
    KNOWN_SPANS,
    KNOWN_TICKER_LABELS,
    MC_SAMPLES,
    SAMPLES_VECTORIZED,
    SCREENED_SOLVES,
    SERVE_COALESCED,
    SERVE_QUERIES,
    SERVE_WARM_HITS,
    SPECTRUM_SOLVES,
    Recorder,
    SpanRecord,
    count,
    current_recorder,
    gauge,
    record,
    span,
    wallclock,
)
from repro.obs.serve import MetricsServer, render_prometheus
from repro.obs.sink import JsonlSink, SpoolSummary, SpoolTailer, merge_spool, read_events
from repro.obs.telemetry import (
    EVENTS_SCHEMA,
    TelemetryRecorder,
    current_spool_dir,
    spool_chunk_events,
    telemetry_session,
)

__all__ = [
    "ARRAY_ENTRIES_BUILT",
    "ASSIGNMENTS_ENUMERATED",
    "CONFIGURATIONS_ENUMERATED",
    "EVENTS_SCHEMA",
    "FLOW_SOLVES",
    "JsonlSink",
    "KNOWN_COUNTERS",
    "KNOWN_SPANS",
    "KNOWN_TICKER_LABELS",
    "MC_SAMPLES",
    "MetricsServer",
    "ProgressTicker",
    "ProgressUpdate",
    "RUN_SCHEMA",
    "Recorder",
    "RunDiff",
    "RunLedger",
    "SAMPLES_VECTORIZED",
    "SCREENED_SOLVES",
    "SERVE_COALESCED",
    "SERVE_QUERIES",
    "SERVE_WARM_HITS",
    "SPECTRUM_SOLVES",
    "SpanRecord",
    "SpoolSummary",
    "SpoolTailer",
    "TelemetryRecorder",
    "count",
    "current_recorder",
    "current_spool_dir",
    "diff_records",
    "format_tree",
    "gauge",
    "make_run_record",
    "merge_spool",
    "phase_summary",
    "progress_ticker",
    "read_events",
    "record",
    "render_prometheus",
    "span",
    "spool_chunk_events",
    "telemetry_session",
    "trace_to_dict",
    "trace_to_json",
    "wallclock",
]
