"""Trace exporters: text tree, JSON, and the flat phase summary.

Three consumers, three shapes:

* :func:`format_tree` — the human-facing phase tree printed by
  ``repro profile`` and ``repro compute --trace``;
* :func:`trace_to_dict` / :func:`trace_to_json` — lossless structured
  trace for ``--trace-json FILE`` and offline analysis;
* :func:`phase_summary` — the flat per-phase accounting attached to
  ``ReliabilityResult.details["obs"]`` for benches and dashboards.

All durations are seconds from :func:`repro.obs.wallclock`; counters
under each phase are *subtree totals*, so the per-phase ``flow_solves``
rows of a summary sum exactly to the trace-wide total (and hence to
``ReliabilityResult.flow_calls`` for the exact kernels).
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.recorder import Recorder, SpanRecord

__all__ = ["format_tree", "phase_summary", "trace_to_dict", "trace_to_json"]


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} us"


def _format_amount(value: int | float) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_annotations(record: SpanRecord) -> str:
    parts: list[str] = []
    for key, value in sorted(record.attrs.items()):
        parts.append(f"{key}={value}")
    for key, value in sorted(record.totals().items()):
        parts.append(f"{key}={_format_amount(value)}")
    for key, value in sorted(record.gauges.items()):
        parts.append(f"{key}={_format_amount(value) if isinstance(value, (int, float)) else value}")
    return ("  [" + " ".join(parts) + "]") if parts else ""


def _tree_lines(record: SpanRecord, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "`- " if is_last else "|- "
    lines.append(
        f"{prefix}{connector}{record.name}  {_format_seconds(record.seconds)}"
        f"{_format_annotations(record)}"
    )
    child_prefix = prefix + ("   " if is_last else "|  ")
    for i, child in enumerate(record.children):
        _tree_lines(child, child_prefix, i == len(record.children) - 1, lines)


def format_tree(source: Recorder | SpanRecord, *, title: str | None = None) -> str:
    """Render the span tree as indented text.

    Counters shown on each line are subtree totals; attributes captured
    at span entry are shown alongside.  The root line reports the whole
    trace duration.
    """
    root = source.root if isinstance(source, Recorder) else source
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"trace  {_format_seconds(root.seconds)}{_format_annotations(root)}")
    for i, child in enumerate(root.children):
        _tree_lines(child, "", i == len(root.children) - 1, lines)
    return "\n".join(lines)


def _span_to_dict(record: SpanRecord) -> dict[str, Any]:
    return {
        "name": record.name,
        "attrs": dict(record.attrs),
        "seconds": record.seconds,
        "counters": dict(record.counters),
        "gauges": dict(record.gauges),
        "children": [_span_to_dict(child) for child in record.children],
    }


def _final_gauges(source: Recorder | SpanRecord) -> dict[str, Any]:
    """Trace-wide last-value-wins gauge state.

    A :class:`Recorder` records gauge arrival order exactly
    (:meth:`Recorder.gauge_values`); a bare subtree falls back to the
    entry-order approximation of :meth:`SpanRecord.gauge_values`.
    """
    return source.gauge_values()


def trace_to_dict(source: Recorder | SpanRecord) -> dict[str, Any]:
    """The full trace as a JSON-serialisable nested dict.

    Per-span ``counters`` here are *own* amounts (not subtree totals),
    so the structure round-trips losslessly; aggregate with
    :func:`phase_summary` when totals are wanted.  ``gauges`` is the
    final last-value-wins state across the whole trace.
    """
    root = source.root if isinstance(source, Recorder) else source
    return {
        "schema": "repro.obs/trace/v1",
        "seconds": root.seconds,
        "counters": root.totals(),
        "gauges": _final_gauges(source),
        "spans": [_span_to_dict(child) for child in root.children],
    }


def trace_to_json(source: Recorder | SpanRecord, *, indent: int | None = 2) -> str:
    """:func:`trace_to_dict` serialised with :func:`json.dumps`."""
    return json.dumps(trace_to_dict(source), indent=indent, default=str)


def phase_summary(source: Recorder | SpanRecord) -> dict[str, Any]:
    """Flat per-phase accounting of one trace.

    A *phase* is a top-level span (direct child of the root).  Each row
    carries the phase's wall time and its subtree counter totals;
    trace-wide totals sit alongside.  This is the payload attached to
    ``ReliabilityResult.details["obs"]``.
    """
    root = source.root if isinstance(source, Recorder) else source
    phases = [
        {
            "name": child.name,
            "attrs": dict(child.attrs),
            "seconds": child.seconds,
            "counters": child.totals(),
        }
        for child in root.children
    ]
    return {
        "seconds": root.seconds,
        "counters": root.totals(),
        "gauges": _final_gauges(source),
        "phases": phases,
    }
