"""Live metrics endpoint: Prometheus-style text exposition + trace JSON.

A :class:`MetricsServer` wraps a :class:`~repro.obs.recorder.Recorder`
(usually the :class:`~repro.obs.telemetry.TelemetryRecorder` of an open
session) in a stdlib-only ``ThreadingHTTPServer`` running on a daemon
thread, so ``repro compute|sweep --metrics-port`` can be scraped while
the enumeration is still running.

Routes
------
``/metrics``
    Prometheus text exposition (version 0.0.4):

    * ``repro_<counter>_total`` — live trace-wide counter totals;
    * ``repro_<gauge>`` — last-value-wins gauges;
    * ``repro_phase_seconds{phase="..."}`` — wall time per top-level
      span (still-open phases report elapsed-so-far);
    * ``repro_worker_<counter>_total`` — counters tailed live from the
      worker spool files (kept separate from the parent's replayed
      totals: during a chunked build the worker view runs *ahead* of
      the parent, and after the merge the two agree — summing them
      would double-count);
    * ``repro_worker_files`` / ``repro_worker_events`` — spool tailer
      progress.

``/trace.json``
    The full live trace (:func:`repro.obs.export.trace_to_dict`) plus
    an ``endpoint`` block (bound host/port — the ephemeral-port
    contract of ``--metrics-port 0``) and a ``workers`` snapshot — the
    feed ``repro top`` renders.

Counter/gauge names are sanitised for Prometheus by mapping every
non-``[a-zA-Z0-9_]`` character to ``_`` (so ``array_cache_hits`` stays
itself and ``arrays.source.rate`` becomes ``arrays_source_rate``).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.obs.export import trace_to_dict
from repro.obs.recorder import Recorder
from repro.obs.sink import SpoolTailer

__all__ = ["MetricsServer", "render_prometheus"]

_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    sanitised = _NAME_SANITISE.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _format_value(value: Any) -> str | None:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(float(value)) if isinstance(value, float) else str(value)
    return None  # non-numeric gauges have no Prometheus representation


def render_prometheus(
    recorder: Recorder, tailer: SpoolTailer | None = None
) -> str:
    """Render the live state of ``recorder`` as Prometheus text."""
    lines: list[str] = []

    counters = recorder.counter_totals()
    for name in sorted(counters):
        metric = f"repro_{_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")

    gauges = recorder.gauge_values()
    for name in sorted(gauges):
        value = _format_value(gauges[name])
        if value is None:
            continue
        metric = f"repro_{_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")

    phases = [child for child in recorder.root.children]
    if phases:
        lines.append("# TYPE repro_phase_seconds gauge")
        for phase in phases:
            label = phase.name.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_phase_seconds{{phase="{label}"}} '
                f"{_format_value(phase.seconds)}"
            )

    if tailer is not None:
        tailer.poll()
        for name in sorted(tailer.totals):
            metric = f"repro_worker_{_metric_name(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(tailer.totals[name])}")
        lines.append("# TYPE repro_worker_files gauge")
        lines.append(f"repro_worker_files {tailer.files_seen}")
        lines.append("# TYPE repro_worker_events gauge")
        lines.append(f"repro_worker_events {tailer.events_seen}")

    return "\n".join(lines) + "\n"


class MetricsServer:
    """Serve one recorder's live state over HTTP until :meth:`stop`.

    Parameters
    ----------
    recorder:
        The recorder to expose; it keeps being written by the run while
        this server reads it (reads are snapshot-style dict copies).
    port:
        TCP port; ``0`` binds an ephemeral port (read :attr:`port`).
    spool_dir:
        Optional telemetry directory whose worker files are tailed into
        the ``repro_worker_*`` metrics.
    host:
        Bind address, loopback by default.
    """

    def __init__(
        self,
        recorder: Recorder,
        *,
        port: int = 0,
        spool_dir: str | Path | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        #: Mutable on purpose: the CLI binds the socket *before* the
        #: telemetry session exists (so the ephemeral port can ride the
        #: ``start`` event) and swaps the real recorder in afterwards.
        #: Handlers read this attribute per request.
        self.recorder = recorder
        self.tailer = SpoolTailer(spool_dir) if spool_dir is not None else None
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._drained = threading.Event()
        self._drained.set()
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                server._enter_request()
                try:
                    self._do_GET_inner()
                finally:
                    server._exit_request()

            def _do_GET_inner(self) -> None:
                path = self.path.split("?", 1)[0]
                if path in ("/", "/metrics"):
                    body = render_prometheus(server.recorder, server.tailer)
                    self._reply(body, "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/trace.json":
                    payload = trace_to_dict(server.recorder)
                    payload["endpoint"] = {
                        "host": server._httpd.server_address[0],
                        "port": server.port,
                        "url": server.url,
                    }
                    if server.tailer is not None:
                        server.tailer.poll()
                        payload["workers"] = server.tailer.snapshot()
                    self._reply(
                        json.dumps(payload, default=str),
                        "application/json; charset=utf-8",
                    )
                else:
                    self.send_error(404, "unknown path (try /metrics or /trace.json)")

            def _reply(self, body: str, content_type: str) -> None:
                data = body.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args: Any) -> None:
                return  # scrapes must not spam the CLI's stderr

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def _enter_request(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            self._drained.clear()

    def _exit_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.set()

    def stop(self, *, drain_timeout: float = 5.0) -> None:
        """Shut the server down gracefully (idempotent).

        Stops accepting new scrapes, then **waits for in-flight
        requests to finish** (up to ``drain_timeout`` seconds) before
        closing the socket — ``daemon_threads`` means ``server_close``
        alone would abandon a handler mid-reply, which is exactly what
        a scraper sees as a torn response on SIGTERM.
        """
        self._httpd.shutdown()
        self._drained.wait(timeout=drain_timeout)
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
