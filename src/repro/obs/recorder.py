"""The instrumentation core: spans, counters, gauges.

A :class:`Recorder` captures a tree of timed *spans* with per-span
integer/float *counters* and last-value *gauges*.  The recorder is
scoped through a :mod:`contextvars` variable, so instrumented library
code never receives it explicitly — kernels call the module-level
:func:`span` / :func:`count` / :func:`gauge` helpers, which collapse to
near-zero-cost no-ops while no recorder is installed:

* :func:`span` returns a shared singleton context manager (no
  allocation, no timestamps);
* :func:`count` / :func:`gauge` return after one context-var read.

That no-op fast path is what lets the hot ``2^n`` loops stay
instrumented permanently without moving the tier-1 timings (the
overhead guard in ``benchmarks/bench_obs_overhead.py`` enforces the
budget).

Timestamps come from :func:`wallclock` — the single sanctioned clock of
the repository.  Direct ``time.perf_counter()`` / ``time.time()`` calls
anywhere else in ``src/repro`` are rejected by lint rule RR107 so every
duration in bench tables and trace output is measured the same way.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

from repro.exceptions import ReproValueError

__all__ = [
    "ARRAY_CACHE_BYTES",
    "ARRAY_CACHE_EVICTED_BYTES",
    "ARRAY_CACHE_EVICTIONS",
    "ARRAY_CACHE_HITS",
    "ARRAY_CACHE_MISSES",
    "ASSIGNMENTS_ENUMERATED",
    "ARRAY_ENTRIES_BUILT",
    "BLOCK_SCREENED",
    "CONFIGURATIONS_ENUMERATED",
    "SHARD_CLAIMS",
    "SERVE_COALESCED",
    "SERVE_QUERIES",
    "SERVE_WARM_HITS",
    "FLOW_REPAIRS",
    "FLOW_SOLVES",
    "AUGMENTING_PATHS_SAVED",
    "MC_SAMPLES",
    "SAMPLES_VECTORIZED",
    "SCREENED_SOLVES",
    "SPECTRUM_SOLVES",
    "KNOWN_COUNTERS",
    "KNOWN_SPANS",
    "KNOWN_TICKER_LABELS",
    "Recorder",
    "SpanRecord",
    "count",
    "current_recorder",
    "gauge",
    "record",
    "span",
    "wallclock",
]

#: The sanctioned monotonic clock (seconds, float).  Everything in the
#: repository that measures a duration reads this — see RR107.
wallclock = time.perf_counter

# -- the typed counter catalogue ------------------------------------------
# Counters are string-keyed, but the cross-kernel cost counters the
# paper's accounting cares about have fixed names so exporters, benches
# and tests agree on the vocabulary.

#: Max-flow solves that enter ``ReliabilityResult.flow_calls`` — the
#: paper's cost measure.  Incremented by the feasibility oracle and the
#: realization-array build (NOT by auxiliary solves such as cut search,
#: which appear under ``solver.<name>.solves`` instead).
FLOW_SOLVES = "flow_solves"
#: Failure configurations whose probability was materialised
#: (``2^m`` per probability-table build).
CONFIGURATIONS_ENUMERATED = "configurations_enumerated"
#: Assignment tuples produced by the §III-B enumeration.
ASSIGNMENTS_ENUMERATED = "assignments_enumerated"
#: Realization-array entries evaluated (``|D| * 2^{m_side}`` per side
#: before pruning).
ARRAY_ENTRIES_BUILT = "array_entries_built"
#: Monte-Carlo samples drawn.
MC_SAMPLES = "mc_samples"
#: Realization solves skipped by the engine's pre-solve screens
#: (``repro.core.engine``): entries proven "not realized" from alive
#: port capacity or terminal/port connectivity alone, so no max-flow
#: solve was spent and they do **not** count toward ``flow_solves``.
SCREENED_SOLVES = "screened_solves"
#: Flow-crossing repairs performed by the incremental engine
#: (``repro.flow.incremental``): one per killed/shrunk arc that carried
#: flow.  The repair solves themselves are counted in ``flow_solves``.
FLOW_REPAIRS = "flow_repairs"
#: Flow units already carried when the incremental engine evaluated a
#: configuration — augmenting-path work a cold solve would have redone
#: from scratch.  The headline saving of the Gray-code walk.
AUGMENTING_PATHS_SAVED = "augmenting_paths_saved"
#: Realization columns served from the content-addressed
#: :class:`repro.core.sweep.ArrayCache` — each hit replaces a full
#: ``2^{m_side}`` column build (and its max-flow solves) with a lookup.
ARRAY_CACHE_HITS = "array_cache_hits"
#: Realization columns the cache had to build (and then stored).
ARRAY_CACHE_MISSES = "array_cache_misses"
#: Bytes of bit-packed realization columns moved through the cache
#: (read on hits + written on stores).
ARRAY_CACHE_BYTES = "array_cache_bytes"
#: Realization (configuration, assignment) pairs the bit-parallel block
#: kernel (``repro.core.bitplane``) settled with its vectorized
#: block-level budget screen — the matmul that disqualifies whole
#: blocks before any per-entry work.  A subset of ``screened_solves``
#: (the lazy per-configuration connectivity screen makes up the rest).
BLOCK_SCREENED = "block_screened"
#: Realization columns claimed (and then built + published) by this
#: process during a share-nothing sharded build
#: (``repro.core.shard``): one per ``.claim`` file won atomically.
SHARD_CLAIMS = "shard_claims"
#: Columns evicted from a bounded :class:`~repro.core.sweep.ArrayCache`
#: (``max_bytes`` LRU): dropped from memory and unlinked from disk.
ARRAY_CACHE_EVICTIONS = "array_cache_evictions"
#: Accounted bytes reclaimed by those evictions.
ARRAY_CACHE_EVICTED_BYTES = "array_cache_evicted_bytes"
#: Queries decoded and answered by the serving daemon
#: (``repro.serve``): one per protocol ``query`` op.
SERVE_QUERIES = "serve_queries"
#: Queries answered by a merged batch beyond the first member — for a
#: plan covering ``n`` queries, ``n - 1`` of them rode along on one cut
#: search / array build / Eq. 2-3 grid.
SERVE_COALESCED = "serve_coalesced"
#: Queries answered with **zero** max-flow solves (every realization
#: column came from the warm :class:`~repro.core.sweep.ArrayCache`).
SERVE_WARM_HITS = "serve_warm_hits"
#: Feasibility queries spent on the rare-event tier's critical-point
#: searches (``repro.core.rare``): one per kill walked along a sampled
#: failure order.  A subset of ``flow_solves`` territory but counted
#: separately so benches can report solves-per-permutation.
SPECTRUM_SOLVES = "spectrum_solves"
#: Samples produced by a single array-at-a-time draw in the estimator
#: tier (permutation batches, splitting populations/refreshes) — the
#: vectorization contract's observable: ``samples_vectorized`` should
#: track ``mc_samples`` without a per-sample Python draw in sight.
SAMPLES_VECTORIZED = "samples_vectorized"

#: The catalogue, for documentation and validation in tests.
KNOWN_COUNTERS = frozenset(
    {
        FLOW_SOLVES,
        CONFIGURATIONS_ENUMERATED,
        ASSIGNMENTS_ENUMERATED,
        ARRAY_ENTRIES_BUILT,
        MC_SAMPLES,
        SCREENED_SOLVES,
        FLOW_REPAIRS,
        AUGMENTING_PATHS_SAVED,
        ARRAY_CACHE_HITS,
        ARRAY_CACHE_MISSES,
        ARRAY_CACHE_BYTES,
        ARRAY_CACHE_EVICTIONS,
        ARRAY_CACHE_EVICTED_BYTES,
        BLOCK_SCREENED,
        SHARD_CLAIMS,
        SERVE_QUERIES,
        SERVE_COALESCED,
        SERVE_WARM_HITS,
        SPECTRUM_SOLVES,
        SAMPLES_VECTORIZED,
    }
)

#: The span taxonomy: every span name instrumented code may open.  Lint
#: rule RR111 rejects ``span()`` calls whose name literal is not listed
#: here (and any dynamically built name), so the vocabulary that
#: ``repro profile`` trees, the live metrics endpoint, and the run
#: ledger agree on stays closed.  Per-solver dynamic families
#: (``solver.<name>.*``) are counters, not spans, and are precomputed
#: once at solver construction — see ``repro.flow.base``.
KNOWN_SPANS = frozenset(
    {
        "bench.call",
        "bitplane.block",
        "bottleneck.accumulate",
        "bottleneck.arrays",
        "bottleneck.assignments",
        "bottleneck.cut_search",
        "bottleneck.sink_array",
        "bottleneck.source_array",
        "bounds.cut_upper",
        "bounds.route_lower",
        "engine.build",
        "engine.chunk",
        "engine.sink_array",
        "engine.source_array",
        "incremental.walk",
        "montecarlo.sample",
        "naive.accumulate",
        "naive.enumerate",
        "parallel.chunk",
        "probability.table",
        "rare.spectrum",
        "rare.split",
        "serve.batch",
        "serve.query",
        "serve.warm",
        "shard.build",
        "sweep.accumulate",
        "sweep.array_cache",
        "sweep.arrays",
        "sweep.assignments",
        "sweep.batch",
        "sweep.cut_search",
        "sweep.plan",
        "sweep.run",
    }
)

#: Labels :func:`repro.obs.progress.progress_ticker` may be created
#: with.  The ticker derives its gauge names (``<label>.items`` /
#: ``<label>.rate``) from the label, so closing this set closes the
#: gauge vocabulary too (also enforced by RR111).
KNOWN_TICKER_LABELS = frozenset(
    {
        "arrays.sink",
        "arrays.source",
        "montecarlo.samples",
        "naive.configurations",
        "rare.permutations",
    }
)


class SpanRecord:
    """One node of the captured span tree.

    Attributes
    ----------
    name:
        Span name (dotted taxonomy, e.g. ``"bottleneck.source_array"``).
    attrs:
        Keyword attributes captured at span entry.
    start, end:
        :func:`wallclock` stamps; ``end`` is ``None`` while open.
    children:
        Child spans in entry order.
    counters:
        Amounts counted *while this span was the innermost open span*
        (children hold their own; use :meth:`total` for the subtree).
    gauges:
        Last value set per gauge name while this span was innermost.
    """

    __slots__ = ("name", "attrs", "start", "end", "children", "counters", "gauges")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end: float | None = None
        self.children: list[SpanRecord] = []
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, Any] = {}

    @property
    def seconds(self) -> float:
        """Wall time of the span (up to now while still open)."""
        end = self.end if self.end is not None else wallclock()
        return max(0.0, end - self.start)

    def total(self, counter: str) -> int | float:
        """Counter total over this span's whole subtree."""
        value: int | float = self.counters.get(counter, 0)
        for child in self.children:
            value = value + child.total(counter)
        return value

    def totals(self) -> dict[str, int | float]:
        """All counter totals over this span's subtree."""
        out: dict[str, int | float] = dict(self.counters)
        for child in self.children:
            for key, value in child.totals().items():
                out[key] = out.get(key, 0) + value
        return out

    def iter_spans(self) -> Iterator["SpanRecord"]:
        """Depth-first iteration over the subtree, self first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def gauge_values(self) -> dict[str, Any]:
        """Last value per gauge name over this span's subtree.

        Gauges are *last-value-wins*: spans entered later override
        earlier settings of the same name.  Subtree order approximates
        chronology (children are stored in entry order); for the exact
        trace-wide chronological view use
        :meth:`Recorder.gauge_values`, which records every ``gauge()``
        call in arrival order.
        """
        out: dict[str, Any] = dict(self.gauges)
        for child in self.children:
            out.update(child.gauge_values())
        return out


class _LiveSpan:
    """Context manager produced by :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "Recorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self.record = record

    def __enter__(self) -> SpanRecord:
        self._recorder._push(self.record)
        return self.record

    def __exit__(self, *exc: object) -> None:
        self._recorder._pop(self.record)


class _NullSpan:
    """Shared do-nothing span used while no recorder is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: The singleton returned by :func:`span` when recording is off.  Being
#: a shared instance is load-bearing: the disabled path allocates
#: nothing (asserted by the unit tests).
NULL_SPAN = _NullSpan()


class Recorder:
    """Captures one trace: a span tree plus counters and gauges.

    Parameters
    ----------
    progress_callback:
        Optional callable receiving
        :class:`repro.obs.progress.ProgressUpdate` objects from
        :class:`~repro.obs.progress.ProgressTicker` instances created
        while this recorder is installed.
    progress_interval:
        Minimum seconds between two progress callbacks per ticker.
    """

    def __init__(
        self,
        *,
        progress_callback: Callable[[Any], None] | None = None,
        progress_interval: float = 0.25,
    ) -> None:
        if progress_interval < 0:
            raise ReproValueError("progress_interval must be non-negative")
        self.root = SpanRecord("<root>", {})
        self.root.start = wallclock()
        self._stack: list[SpanRecord] = [self.root]
        self._gauge_values: dict[str, Any] = {}
        self._counter_totals: dict[str, int | float] = {}
        self.progress_callback = progress_callback
        self.progress_interval = progress_interval

    # -- span plumbing ----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """A context manager recording one timed span under the current one."""
        return _LiveSpan(self, SpanRecord(name, attrs))

    def _push(self, record: SpanRecord) -> None:
        record.start = wallclock()
        self._stack[-1].children.append(record)
        self._stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        record.end = wallclock()
        # Tolerate exits out of order (a span leaked across a generator
        # boundary): unwind to the matching record if present.
        if record in self._stack:
            while self._stack[-1] is not record:
                leaked = self._stack.pop()
                if leaked.end is None:
                    leaked.end = record.end
            self._stack.pop()

    @property
    def current(self) -> SpanRecord:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    def finish(self) -> SpanRecord:
        """Close the root span and return it."""
        now = wallclock()
        for open_span in self._stack[1:]:
            if open_span.end is None:
                open_span.end = now
        del self._stack[1:]
        if self.root.end is None:
            self.root.end = now
        return self.root

    # -- counters and gauges ----------------------------------------------

    def count(self, name: str, amount: int | float = 1) -> None:
        """Add ``amount`` to counter ``name`` on the innermost span."""
        counters = self._stack[-1].counters
        counters[name] = counters.get(name, 0) + amount
        totals = self._counter_totals
        totals[name] = totals.get(name, 0) + amount

    def gauge(self, name: str, value: Any) -> None:
        """Set gauge ``name`` on the innermost span (last value wins)."""
        self._stack[-1].gauges[name] = value
        self._gauge_values[name] = value

    def counter_total(self, name: str) -> int | float:
        """Total of one counter over the whole trace."""
        return self._counter_totals.get(name, 0)

    def counter_totals(self) -> dict[str, int | float]:
        """All counter totals over the whole trace.

        Maintained incrementally by :meth:`count` (it mirrors every
        increment into one trace-wide map), so reading the totals is
        O(#counters) — the telemetry heartbeat and the live metrics
        endpoint poll this on every phase close / scrape and must not
        pay a span-tree walk that grows with the trace.
        """
        return dict(self._counter_totals)

    def gauge_values(self) -> dict[str, Any]:
        """Last value per gauge name over the whole trace.

        The trace-wide companion of :meth:`counter_totals`: exporters
        and the live metrics endpoint read the final gauge state from
        here instead of walking the span tree.  Exactly chronological —
        every :meth:`gauge` call updates this map in arrival order, so
        "last" means last *set*, not last in tree order.
        """
        return dict(self._gauge_values)


# -- context-var scoping ------------------------------------------------

_ACTIVE: ContextVar[Recorder | None] = ContextVar("repro_obs_recorder", default=None)


def current_recorder() -> Recorder | None:
    """The installed recorder, or ``None`` (instrumentation disabled)."""
    return _ACTIVE.get()


@contextmanager
def record(recorder: Recorder | None = None) -> Iterator[Recorder]:
    """Install a recorder for the duration of the ``with`` block.

    >>> from repro.obs import record, span
    >>> with record() as rec:
    ...     with span("work"):
    ...         pass
    >>> [child.name for child in rec.root.children]
    ['work']
    """
    rec = Recorder() if recorder is None else recorder
    token = _ACTIVE.set(rec)
    try:
        yield rec
    finally:
        _ACTIVE.reset(token)
        rec.finish()


# -- the no-op-able module-level API ------------------------------------


def span(name: str, **attrs: Any) -> _LiveSpan | _NullSpan:
    """A timed span on the installed recorder, or the shared no-op span."""
    rec = _ACTIVE.get()
    if rec is None:
        return NULL_SPAN
    return rec.span(name, **attrs)


def count(name: str, amount: int | float = 1) -> None:
    """Increment a counter on the installed recorder, if any."""
    rec = _ACTIVE.get()
    if rec is not None:
        rec.count(name, amount)


def gauge(name: str, value: Any) -> None:
    """Set a gauge on the installed recorder, if any."""
    rec = _ACTIVE.get()
    if rec is not None:
        rec.gauge(name, value)
