"""Durable telemetry: the ``repro.obs/events/v1`` stream and its plumbing.

:class:`TelemetryRecorder` is a :class:`~repro.obs.recorder.Recorder`
that additionally *streams* what it captures: every span open/close is
emitted as one JSONL event through a :class:`~repro.obs.sink.JsonlSink`,
so the trace exists on disk while the run is still going — and survives
the run being killed.

Event vocabulary (``ev`` field), one JSON object per line:

``start``
    Stream header: ``schema``, ``pid``, ``unix`` epoch stamp and
    free-form ``meta`` (CLI command, input path, ...).
``span_open``
    ``name``, entry ``attrs``, ``t`` seconds since the stream started.
``span_close``
    ``name``, ``seconds``, the span's **own** ``counters`` and
    ``gauges`` (children report themselves) and ``t``.  Summing
    ``span_close`` counters over a stream therefore reproduces the
    recorder's :meth:`~repro.obs.recorder.Recorder.counter_totals`.
``counters``
    Cumulative counter snapshot, emitted at phase boundaries as a
    recovery point for interrupted runs.
``finish``
    Final cumulative ``counters`` / ``gauges`` and total ``seconds``.
    Present exactly when the run completed cleanly.

Cross-process spooling
----------------------
A telemetry *session* (:func:`telemetry_session`) owns a directory: the
parent streams to ``main.jsonl`` and publishes the directory through a
context variable.  Chunk workers in :mod:`repro.core.engine` /
:mod:`repro.core.parallel` cannot share the parent's recorder (they may
be separate processes), so each chunk writes its counters as a tiny
``worker-<pid>-<seq>.jsonl`` stream via :func:`spool_chunk_events` —
carrying *exactly* the amounts the parent replays onto its
``engine.chunk`` / ``parallel.chunk`` spans.  That makes the merge
invariant (worker-file totals == replayed totals, bit-exact) true by
construction; ``tests/properties/test_prop_telemetry.py`` pins it.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.obs.recorder import Recorder, SpanRecord, record, wallclock
from repro.obs.sink import PARENT_SPOOL_NAME, WORKER_SPOOL_GLOB, JsonlSink

__all__ = [
    "EVENTS_SCHEMA",
    "TelemetryRecorder",
    "current_spool_dir",
    "spool_chunk_events",
    "telemetry_session",
]

#: Schema tag stamped on the ``start`` event of every stream.
EVENTS_SCHEMA = "repro.obs/events/v1"

#: Per-process sequence for worker spool filenames; combined with the
#: pid it is unique across the whole worker pool.
_SPOOL_SEQ = itertools.count()

#: The active telemetry directory, if a session is open.  Read by the
#: chunked engines when building worker payloads.
_SPOOL: ContextVar[str | None] = ContextVar("repro_obs_spool_dir", default=None)


def current_spool_dir() -> Path | None:
    """The active session's spool directory, or ``None``."""
    value = _SPOOL.get()
    return Path(value) if value is not None else None


class TelemetryRecorder(Recorder):
    """A recorder that streams its trace as ``events/v1`` JSONL.

    Everything the base :class:`Recorder` captures in memory still
    happens (the span tree, ``counter_totals()``, exporters); this class
    only adds emission.  The sink is flushed at phase closes (direct
    children of the root) that land at least ``flush_interval`` seconds
    after the previous flush, and whenever its bounded buffer fills —
    so the durable stream trails the live trace by at most
    ``flush_interval`` seconds plus one open phase (sub-interval phases
    batch their events instead of paying a write() each).  Any unwind,
    including the SIGTERM-raised one, flushes the remainder
    (``telemetry_session`` closes the sink).
    """

    def __init__(
        self,
        sink: JsonlSink,
        *,
        meta: Mapping[str, Any] | None = None,
        flush_interval: float = 0.05,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.sink = sink
        self.flush_interval = flush_interval
        self._suppress_finish = False
        self._last_flush = wallclock()
        sink.emit(
            {
                "schema": EVENTS_SCHEMA,
                "ev": "start",
                "pid": os.getpid(),
                "unix": time.time(),
                "meta": dict(meta or {}),
            }
        )
        sink.flush()

    def _elapsed(self) -> float:
        return wallclock() - self.root.start

    def _push(self, record: SpanRecord) -> None:
        super()._push(record)
        self.sink.emit(
            {
                "ev": "span_open",
                "name": record.name,
                "attrs": dict(record.attrs),
                "t": self._elapsed(),
            }
        )

    def _pop(self, record: SpanRecord) -> None:
        was_phase = len(self._stack) == 2 and self._stack[-1] is record
        super()._pop(record)
        self.sink.emit(
            {
                "ev": "span_close",
                "name": record.name,
                "seconds": record.seconds,
                "counters": dict(record.counters),
                "gauges": dict(record.gauges),
                "t": self._elapsed(),
            }
        )
        if was_phase:
            # Phase boundary: drop a cumulative recovery point so an
            # interrupted stream still yields totals up to the last
            # completed phase, and make everything up to here durable —
            # unless the last flush was moments ago (a grid of sub-ms
            # phases must not pay one write() per point).
            self.sink.emit(
                {
                    "ev": "counters",
                    "counters": self.counter_totals(),
                    "t": self._elapsed(),
                }
            )
            now = wallclock()
            if now - self._last_flush >= self.flush_interval:
                self.sink.flush()
                self._last_flush = now

    def finish(self) -> SpanRecord:
        already = self.root.end is not None
        root = super().finish()
        if not already and not self._suppress_finish:
            self.sink.emit(
                {
                    "ev": "finish",
                    "seconds": root.seconds,
                    "counters": self.counter_totals(),
                    "gauges": self.gauge_values(),
                }
            )
        if not already:
            self.sink.flush()
        return root


@contextmanager
def telemetry_session(
    directory: str | Path,
    *,
    meta: Mapping[str, Any] | None = None,
    capacity: int = 256,
    recorder: TelemetryRecorder | None = None,
) -> Iterator[TelemetryRecorder]:
    """Open a telemetry directory and record into it.

    Creates ``directory``, streams the parent trace to ``main.jsonl``
    inside it, installs the recorder (as :func:`repro.obs.record` does)
    and publishes the directory so the chunked engines spool worker
    events next to it.  On exit — normal or via exception, including
    the SIGTERM-raised one — the trace is finished and the sink closed,
    so the directory is always left readable.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    # A fresh session truncates main.jsonl; stale worker spools from a
    # previous run in the same directory would then break the merge
    # invariant (their totals belong to a trace that no longer exists).
    for stale in root.glob(WORKER_SPOOL_GLOB):
        stale.unlink(missing_ok=True)
    sink = JsonlSink(root / PARENT_SPOOL_NAME, capacity=capacity)
    rec = (
        TelemetryRecorder(sink, meta=meta) if recorder is None else recorder
    )
    token = _SPOOL.set(str(root))
    try:
        with record(rec):
            try:
                yield rec
            except BaseException:
                # An exceptional unwind (including the SIGTERM-raised
                # one) must not stamp a clean ``finish`` event: its
                # absence is how readers recognise an interrupted run.
                rec._suppress_finish = True
                raise
    finally:
        _SPOOL.reset(token)
        sink.close()


def spool_chunk_events(
    directory: str | Path,
    name: str,
    *,
    attrs: Mapping[str, Any] | None = None,
    seconds: float,
    counters: Mapping[str, int | float],
) -> Path:
    """Write one chunk's counters as a standalone worker stream.

    Called at the end of a chunk worker (possibly in a separate
    process).  The file carries a ``start`` header plus a single
    ``span_close`` whose ``counters`` are exactly what the parent
    replays for this chunk — the unit of the merge invariant.
    """
    path = Path(directory) / f"worker-{os.getpid()}-{next(_SPOOL_SEQ):06d}.jsonl"
    with JsonlSink(path, capacity=1) as sink:
        sink.emit({"schema": EVENTS_SCHEMA, "ev": "start", "pid": os.getpid(), "unix": time.time(), "meta": {}})
        sink.emit(
            {
                "ev": "span_close",
                "name": name,
                "attrs": dict(attrs or {}),
                "seconds": seconds,
                "counters": dict(counters),
                "gauges": {},
                "t": seconds,
            }
        )
    return path
