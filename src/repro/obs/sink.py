"""Streaming event sinks: bounded-buffer JSONL output and spool readers.

The durable half of :mod:`repro.obs`: while the :class:`~repro.obs.recorder.Recorder`
holds a trace in process memory, a :class:`JsonlSink` streams the same
information to disk as schema-versioned JSONL *events* (see
:mod:`repro.obs.telemetry` for the event vocabulary) so a killed run
still leaves a readable record.

Durability contract
-------------------
* every event is one complete ``\\n``-terminated JSON line;
* the bounded buffer flushes with **one** ``write()`` call per flush, so
  a crash can truncate at most the final line of a file — never corrupt
  an earlier one;
* :func:`read_events` tolerates exactly that failure mode: an
  undecodable *final* line is dropped (and reported), an undecodable
  interior line raises, because it means something other than a crash
  wrote the file.

The reading half (:func:`read_events`, :func:`merge_spool`,
:class:`SpoolTailer`) is what the parent process uses to aggregate the
per-worker spool files written by :mod:`repro.core.engine` /
:mod:`repro.core.parallel` chunk workers — live (tailer) or post-hoc
(merge).  The merge invariant is pinned by
``tests/properties/test_prop_telemetry.py``: summing the worker files'
``span_close`` counters reproduces the parent's replayed counter totals
exactly.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.exceptions import ReproValueError

__all__ = [
    "JsonlSink",
    "SpoolSummary",
    "SpoolTailer",
    "merge_spool",
    "read_events",
    "WORKER_SPOOL_GLOB",
]

#: Filename pattern of the per-worker spool files inside a telemetry
#: directory (written by the chunk workers, read by the tailer/merge).
WORKER_SPOOL_GLOB = "worker-*.jsonl"

#: Filename of the parent process's own event stream.
PARENT_SPOOL_NAME = "main.jsonl"


def _encode(event: Mapping[str, Any]) -> str:
    return json.dumps(event, separators=(",", ":"), sort_keys=True, default=str) + "\n"


class JsonlSink:
    """Append JSON events to a file through a bounded line buffer.

    Parameters
    ----------
    path:
        Destination file; parent directories are created.
    capacity:
        Maximum buffered events before an automatic flush.  ``1`` makes
        every ``emit`` durable immediately.
    mode:
        ``"w"`` (default) truncates — each sink owns its file — or
        ``"a"`` to append to an existing stream.

    The sink is a context manager (``close()`` flushes).  Emission is
    thread-safe; the file handle is opened lazily on the first event so
    constructing a sink that never emits leaves no file behind.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        capacity: int = 256,
        mode: str = "w",
    ) -> None:
        if capacity < 1:
            raise ReproValueError(f"sink capacity must be >= 1, got {capacity}")
        if mode not in ("w", "a"):
            raise ReproValueError(f"sink mode must be 'w' or 'a', got {mode!r}")
        self.path = Path(path)
        self.capacity = capacity
        self._mode = mode
        self._buffer: list[str] = []
        self._handle: Any = None
        self._lock = threading.Lock()
        self._closed = False
        self.events_emitted = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def emit(self, event: Mapping[str, Any]) -> None:
        """Buffer one event; auto-flush when the buffer is full."""
        line = _encode(event)
        with self._lock:
            if self._closed:
                raise ReproValueError(f"sink for {self.path} is closed")
            self._buffer.append(line)
            self.events_emitted += 1
            if len(self._buffer) >= self.capacity:
                self._flush_locked()

    def flush(self) -> None:
        """Write all buffered lines with a single ``write()`` call."""
        with self._lock:
            if not self._closed:
                self._flush_locked()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._closed = True

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, self._mode, encoding="utf-8")
        # One write call for the whole batch: a crash mid-write can
        # truncate the tail of this batch but never interleave with or
        # corrupt previously flushed lines.
        self._handle.write("".join(self._buffer))
        self._handle.flush()
        self._buffer.clear()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse one JSONL event file, tolerating a truncated final line.

    A killed process can leave at most one partial line at the end of a
    sink file (see :class:`JsonlSink`); that line is silently dropped.
    An undecodable line anywhere *else* raises
    :class:`~repro.exceptions.ReproValueError` — it indicates real
    corruption, not an interrupted run.
    """
    raw = Path(path).read_text(encoding="utf-8")
    lines = raw.split("\n")
    events: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        text = line.strip()
        if not text:
            continue
        try:
            events.append(json.loads(text))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                break  # truncated tail of an interrupted run: expected
            raise ReproValueError(
                f"corrupt event stream {path}: undecodable interior line {i + 1}"
            ) from exc
    return events


def _accumulate_counters(
    totals: dict[str, int | float], counters: Mapping[str, Any]
) -> None:
    for name, value in counters.items():
        totals[name] = totals.get(name, 0) + value


def _stream_counter_totals(events: list[dict[str, Any]]) -> dict[str, int | float]:
    """Counter totals of one stream: the sum of ``span_close`` own counters.

    ``counters``/``finish`` snapshot events carry *cumulative* totals and
    are deliberately not summed (they would double-count); they serve as
    the fallback when a stream died with spans still open.
    """
    totals: dict[str, int | float] = {}
    for event in events:
        if event.get("ev") == "span_close":
            _accumulate_counters(totals, event.get("counters", {}))
    return totals


def _last_snapshot(events: list[dict[str, Any]]) -> dict[str, int | float] | None:
    """The most recent cumulative totals snapshot of a stream, if any."""
    snapshot: dict[str, int | float] | None = None
    for event in events:
        if event.get("ev") in ("counters", "finish"):
            snapshot = dict(event.get("counters", {}))
    return snapshot


@dataclass
class SpoolSummary:
    """Aggregated view of one telemetry directory.

    Attributes
    ----------
    worker_files:
        Number of per-worker spool files found.
    worker_totals:
        Counter totals summed over every worker stream's ``span_close``
        events — by construction exactly the numbers the parent replays
        onto its ``engine.chunk`` / ``parallel.chunk`` spans.
    parent_totals:
        Cumulative totals from the parent stream's final snapshot
        (``finish`` event, or the last ``counters`` heartbeat of an
        interrupted run); ``None`` when no parent stream exists.
    parent_finished:
        Whether the parent stream recorded a clean ``finish`` event.
    events:
        Total events parsed across all streams.
    """

    directory: Path
    worker_files: int = 0
    worker_totals: dict[str, int | float] = field(default_factory=dict)
    parent_totals: dict[str, int | float] | None = None
    parent_finished: bool = False
    events: int = 0


def merge_spool(directory: str | Path) -> SpoolSummary:
    """Merge every event stream under ``directory`` into one summary.

    Worker streams (``worker-*.jsonl``) are summed over their
    ``span_close`` counters; the parent stream (``main.jsonl``) supplies
    its final cumulative snapshot.  The headline invariant — worker
    totals equal the parent's replayed chunk counters bit-exactly — is
    what makes the spool a faithful live view of a multi-process run.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ReproValueError(f"telemetry directory {root} does not exist")
    summary = SpoolSummary(directory=root)
    for path in sorted(root.glob(WORKER_SPOOL_GLOB)):
        events = read_events(path)
        summary.worker_files += 1
        summary.events += len(events)
        _accumulate_counters(summary.worker_totals, _stream_counter_totals(events))
    parent = root / PARENT_SPOOL_NAME
    if parent.is_file():
        events = read_events(parent)
        summary.events += len(events)
        summary.parent_totals = _last_snapshot(events)
        summary.parent_finished = any(e.get("ev") == "finish" for e in events)
    return summary


class SpoolTailer:
    """Incremental reader of the per-worker spool files.

    The parent process polls the telemetry directory while a chunked
    build runs in worker processes: each :meth:`poll` reads only the
    bytes appended since the previous poll (never past the last complete
    line), parses the new events, and folds their ``span_close``
    counters into :attr:`totals`.  The live metrics endpoint
    (:mod:`repro.obs.serve`) exposes these as ``repro_worker_*`` so an
    operator watches chunk completions stream in before the parent's
    own replay lands.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._offsets: dict[Path, int] = {}
        self._pending: dict[Path, str] = {}
        self.totals: dict[str, int | float] = {}
        self.files_seen = 0
        self.events_seen = 0

    def poll(self) -> int:
        """Consume newly appended complete lines; returns new event count."""
        if not self.directory.is_dir():
            return 0
        new_events = 0
        for path in sorted(self.directory.glob(WORKER_SPOOL_GLOB)):
            if path not in self._offsets:
                self._offsets[path] = 0
                self._pending[path] = ""
                self.files_seen += 1
            new_events += self._poll_file(path)
        return new_events

    def _poll_file(self, path: Path) -> int:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(self._offsets[path])
                chunk = handle.read()
                self._offsets[path] = handle.tell()
        except OSError:
            return 0
        if not chunk:
            return 0
        text = self._pending[path] + chunk
        complete, _, remainder = text.rpartition("\n")
        self._pending[path] = remainder
        count = 0
        for line in complete.split("\n"):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn write mid-run; the merge pass re-checks
            count += 1
            if event.get("ev") == "span_close":
                _accumulate_counters(self.totals, event.get("counters", {}))
        self.events_seen += count
        return count

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view for the live endpoint."""
        return {
            "files": self.files_seen,
            "events": self.events_seen,
            "counters": dict(self.totals),
        }


def iter_worker_streams(
    directory: str | Path,
) -> Iterator[tuple[Path, list[dict[str, Any]]]]:
    """``(path, events)`` for every worker spool file, sorted by name."""
    root = Path(directory)
    for path in sorted(root.glob(WORKER_SPOOL_GLOB)):
        yield path, read_events(path)
