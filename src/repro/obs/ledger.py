"""The run ledger: content-addressed records of every CLI computation.

Every ``repro compute`` / ``repro sweep`` appends one *run record* —
input fingerprint, counter totals, per-phase wallclock, an environment
fingerprint, and the computed value — under ``.repro/runs/``.  Records
are content-addressed (the run id is a prefix of the SHA-256 of the
canonical record JSON), so identical records collide into the same id
and the ledger is append-only by construction.

``repro runs list|show|diff`` reads the ledger back; :func:`diff_records`
is the regression gate: counter blow-ups (e.g. a change that doubles
``flow_solves`` on the same input) are **hard** regressions, wallclock
growth is *advisory* by default (CI machines are noisy; pass
``strict_latency=True`` to promote it).  A diff reference can be a run
id prefix, a negative index (``-1`` = latest), or a path to a committed
baseline record such as ``benchmarks/BENCH_telemetry.json`` — which is
just a run record produced by this module and checked in.

Schema: ``repro.obs/run/v1``.  This module lives in :mod:`repro.obs`
deliberately — it stamps epoch times, and RR107 confines raw clock
reads to this package.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ReproValueError

__all__ = [
    "RUN_SCHEMA",
    "RunDiff",
    "RunLedger",
    "canonical_json",
    "content_hash",
    "diff_records",
    "env_fingerprint",
    "make_run_record",
]

#: Schema tag of every ledger record.
RUN_SCHEMA = "repro.obs/run/v1"

#: Default location of the ledger, relative to the working directory.
DEFAULT_LEDGER_DIR = ".repro/runs"

#: Characters of the SHA-256 hex digest used as the run id.
_ID_LENGTH = 12

_INDEX_NAME = "index.jsonl"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, tight separators, stringified
    fallbacks — the form every content hash in the ledger is taken over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def env_fingerprint() -> dict[str, str]:
    """Where a run happened: interpreter, platform, key library versions."""
    try:
        import numpy

        numpy_version = str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = "absent"
    try:
        from repro._version import __version__ as repro_version
    except Exception:  # pragma: no cover
        repro_version = "unknown"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy_version,
        "repro": repro_version,
    }


def make_run_record(
    *,
    command: str,
    input_fingerprint: str,
    params: Mapping[str, Any],
    status: str = "completed",
    seconds: float | None = None,
    counters: Mapping[str, int | float] | None = None,
    phases: list[Mapping[str, Any]] | None = None,
    value: Any = None,
    flow_calls: int | None = None,
    solver: str | None = None,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one schema-versioned run record (not yet persisted).

    ``status`` is ``"completed"`` for a clean run or ``"interrupted"``
    when the process was terminated mid-computation — the kill-safety
    contract is that a SIGTERM'd sweep still appends a well-formed
    record with this status.
    """
    if status not in ("completed", "interrupted", "failed"):
        raise ReproValueError(f"unknown run status {status!r}")
    env = env_fingerprint()
    if solver is not None:
        env["solver"] = solver
    return {
        "schema": RUN_SCHEMA,
        "command": command,
        "input": input_fingerprint,
        "params": dict(params),
        "status": status,
        "seconds": seconds,
        "counters": dict(counters or {}),
        "phases": [dict(p) for p in phases or []],
        "value": value,
        "flow_calls": flow_calls,
        "env": env,
        "unix": time.time(),
    }


class RunLedger:
    """Append-only store of run records under one directory.

    Layout: ``<dir>/<id>.json`` per record plus an ``index.jsonl`` of
    one summary line per append (id, time, command, status, headline
    numbers) so ``runs list`` never has to open every record.
    """

    def __init__(self, directory: str | Path = DEFAULT_LEDGER_DIR) -> None:
        self.directory = Path(directory)

    # -- writing ----------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> str:
        """Persist ``record`` and return its content-addressed id.

        The id hashes the record *without* its timestamp, so re-running
        an identical computation in an identical environment lands on
        the same id (and simply overwrites the identical file).
        """
        body = dict(record)
        hashed = {k: v for k, v in body.items() if k != "unix"}
        run_id = content_hash(hashed)[:_ID_LENGTH]
        body["id"] = run_id
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{run_id}.json"
        path.write_text(json.dumps(body, indent=2, default=str) + "\n", encoding="utf-8")
        index_line = canonical_json(
            {
                "id": run_id,
                "unix": body.get("unix"),
                "command": body.get("command"),
                "status": body.get("status"),
                "seconds": body.get("seconds"),
                "flow_calls": body.get("flow_calls"),
                "value": body.get("value"),
            }
        )
        with open(self.directory / _INDEX_NAME, "a", encoding="utf-8") as handle:
            handle.write(index_line + "\n")
        return run_id

    # -- reading ----------------------------------------------------------

    def entries(self) -> list[dict[str, Any]]:
        """Index entries, oldest first (undecodable tail line tolerated)."""
        index = self.directory / _INDEX_NAME
        if not index.is_file():
            return []
        out: list[dict[str, Any]] = []
        lines = index.read_text(encoding="utf-8").split("\n")
        for i, line in enumerate(lines):
            text = line.strip()
            if not text:
                continue
            try:
                out.append(json.loads(text))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    break  # torn final append of a killed process
                raise ReproValueError(
                    f"corrupt ledger index {index}: line {i + 1}"
                ) from exc
        return out

    def load(self, run_id: str) -> dict[str, Any]:
        """Load one full record by exact id."""
        path = self.directory / f"{run_id}.json"
        if not path.is_file():
            raise ReproValueError(f"no run {run_id!r} in ledger {self.directory}")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(loaded, dict):
            raise ReproValueError(f"run record {path} is not a JSON object")
        return loaded

    def resolve(self, ref: str) -> dict[str, Any]:
        """Resolve a user-facing reference to a full record.

        In order: a path to a record JSON file (committed baselines),
        a negative index into the ledger (``-1`` = latest append), or a
        unique run-id prefix.
        """
        as_path = Path(ref)
        if as_path.is_file():
            loaded = json.loads(as_path.read_text(encoding="utf-8"))
            if not isinstance(loaded, dict) or loaded.get("schema") != RUN_SCHEMA:
                raise ReproValueError(
                    f"{ref} is not a {RUN_SCHEMA} run record"
                )
            return loaded
        entries = self.entries()
        if ref.lstrip("-").isdigit() and ref.startswith("-"):
            index = int(ref)
            if not entries or not (-len(entries) <= index <= -1):
                raise ReproValueError(
                    f"ledger has {len(entries)} runs; index {ref} out of range"
                )
            return self.load(str(entries[index]["id"]))
        matches = sorted({str(e["id"]) for e in entries if str(e["id"]).startswith(ref)})
        if len(matches) == 1:
            return self.load(matches[0])
        if not matches:
            raise ReproValueError(f"no run matching {ref!r} in {self.directory}")
        raise ReproValueError(f"ambiguous run reference {ref!r}: {', '.join(matches)}")


@dataclass
class RunDiff:
    """Outcome of comparing two run records.

    ``counter_regressions`` drive the exit status (:attr:`ok`);
    ``latency_regressions`` are advisory unless the diff was run with
    ``strict_latency=True`` (in which case they are folded in by the
    caller examining :attr:`ok_strict`).
    """

    base_id: str
    other_id: str
    same_input: bool
    counter_regressions: list[dict[str, Any]] = field(default_factory=list)
    counter_improvements: list[dict[str, Any]] = field(default_factory=list)
    latency_regressions: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counter_regressions

    @property
    def ok_strict(self) -> bool:
        return self.ok and not self.latency_regressions


def _numeric_counters(record: Mapping[str, Any]) -> dict[str, float]:
    out: dict[str, float] = {}
    for name, value in (record.get("counters") or {}).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[str(name)] = float(value)
    return out


def _phase_seconds(record: Mapping[str, Any]) -> dict[str, float]:
    out: dict[str, float] = {}
    for phase in record.get("phases") or []:
        seconds = phase.get("seconds")
        if isinstance(seconds, (int, float)) and not isinstance(seconds, bool):
            # Repeated phase names (e.g. engine.chunk) accumulate.
            name = str(phase.get("name"))
            out[name] = out.get(name, 0.0) + float(seconds)
    return out


def diff_records(
    base: Mapping[str, Any],
    other: Mapping[str, Any],
    *,
    tolerance: float = 1.25,
    min_seconds: float = 0.05,
) -> RunDiff:
    """Compare ``other`` against baseline ``base``.

    A counter is a **regression** when it grew beyond ``tolerance``
    (ratio, default 25% headroom for legitimately noisy counters like
    cache byte counts) — including appearing where the baseline had
    zero.  An **improvement** is the mirror image (shrunk below
    ``1/tolerance``), reported for context, never fatal.  Counters whose
    name ends in ``.seconds`` carry wallclock, not work — they join the
    advisory latency gate instead of the hard counter gate.  Wallclock
    (total and per-phase) is flagged only when it exceeds the tolerance
    *and* grew by at least ``min_seconds`` absolute — sub-50 ms phase
    jitter is machine noise, not signal.
    """
    if tolerance <= 1.0:
        raise ReproValueError(f"tolerance must exceed 1.0, got {tolerance}")
    diff = RunDiff(
        base_id=str(base.get("id", "<baseline>")),
        other_id=str(other.get("id", "<candidate>")),
        same_input=base.get("input") == other.get("input"),
    )
    base_counters = _numeric_counters(base)
    other_counters = _numeric_counters(other)
    for name in sorted(set(base_counters) | set(other_counters)):
        b = base_counters.get(name, 0.0)
        o = other_counters.get(name, 0.0)
        if b == o:
            continue
        if name.endswith(".seconds"):
            # Time-valued counters (solver.<name>.seconds) are machine
            # noise like any wallclock: advisory, with the same
            # absolute-delta guard as phase timings.
            if o - b >= min_seconds and (b == 0.0 or o / b > tolerance):
                diff.latency_regressions.append(
                    {"name": name, "base": b, "other": o, "ratio": (o / b) if b else None}
                )
            continue
        ratio = (o / b) if b > 0 else None
        entry = {"name": name, "base": b, "other": o, "ratio": ratio}
        if o > b and (ratio is None or ratio > tolerance):
            diff.counter_regressions.append(entry)
        elif b > o and (o == 0.0 or b / o > tolerance):
            diff.counter_improvements.append(entry)

    base_latency = _phase_seconds(base)
    base_latency["<total>"] = float(base.get("seconds") or 0.0)
    other_latency = _phase_seconds(other)
    other_latency["<total>"] = float(other.get("seconds") or 0.0)
    for name in sorted(set(base_latency) | set(other_latency)):
        b = base_latency.get(name, 0.0)
        o = other_latency.get(name, 0.0)
        if o - b < min_seconds:
            continue
        if b == 0.0 or o / b > tolerance:
            diff.latency_regressions.append(
                {"name": name, "base": b, "other": o, "ratio": (o / b) if b else None}
            )
    return diff
