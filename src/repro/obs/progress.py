"""Progress signalling for the exponential loops.

The ``2^{|E_side|}`` realization-array builds and the ``2^{|E|}`` naive
enumeration can run for minutes; :class:`ProgressTicker` gives them a
heartbeat.  Kernels obtain a ticker through :func:`progress_ticker`,
which returns a shared no-op singleton when no recorder is installed —
``tick()`` on the hot path then costs one attribute lookup and an empty
method call, nothing more.

With a recorder installed, each flush computes the instantaneous rate
and (when the total is known) an ETA, forwards a
:class:`ProgressUpdate` to the recorder's ``progress_callback``, and on
:meth:`ProgressTicker.finish` stamps ``<label>.items`` /
``<label>.rate`` gauges onto the current span so traces carry the
throughput numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproValueError
from repro.obs.recorder import Recorder, current_recorder, wallclock

__all__ = ["ProgressTicker", "ProgressUpdate", "progress_ticker"]


@dataclass(frozen=True)
class ProgressUpdate:
    """One progress heartbeat.

    Attributes
    ----------
    label:
        The loop's label (span-taxonomy style, e.g.
        ``"naive.configurations"``).
    done:
        Items completed so far.
    total:
        Expected item count, or ``None`` when unknown.
    elapsed:
        Seconds since the ticker was created.
    rate:
        Items per second over the whole run so far (0.0 until
        measurable).
    eta:
        Estimated seconds remaining, or ``None`` when ``total`` is
        unknown or the rate is still 0.
    final:
        True for the closing update emitted by ``finish()``.
    """

    label: str
    done: int
    total: int | None
    elapsed: float
    rate: float
    eta: float | None
    final: bool = False

    @property
    def fraction(self) -> float | None:
        """Completion fraction in ``[0, 1]``, or ``None`` if unbounded."""
        if self.total is None or self.total <= 0:
            return None
        return min(1.0, self.done / self.total)


class ProgressTicker:
    """Counts loop iterations and emits rate/ETA callbacks.

    Parameters
    ----------
    label:
        Name used in updates and in the gauges left on the trace.
    total:
        Expected number of ticks (``None`` = unknown).
    recorder:
        Recorder receiving the final gauges; its ``progress_callback``
        and ``progress_interval`` drive the heartbeat.  ``None``
        disables both (the ticker still counts, so library code can use
        one unconditionally).
    """

    __slots__ = ("label", "total", "done", "_recorder", "_start", "_last_emit")

    def __init__(
        self,
        label: str,
        total: int | None = None,
        *,
        recorder: Recorder | None = None,
    ) -> None:
        if total is not None and total < 0:
            raise ReproValueError("progress total must be non-negative")
        self.label = label
        self.total = total
        self.done = 0
        self._recorder = recorder
        self._start = wallclock()
        self._last_emit = self._start

    def tick(self, amount: int = 1) -> None:
        """Record ``amount`` completed items; maybe emit a heartbeat."""
        self.done += amount
        recorder = self._recorder
        if recorder is None or recorder.progress_callback is None:
            return
        now = wallclock()
        if now - self._last_emit >= recorder.progress_interval:
            self._last_emit = now
            recorder.progress_callback(self._update(now, final=False))

    def finish(self) -> ProgressUpdate:
        """Close the loop: final callback plus trace gauges."""
        now = wallclock()
        update = self._update(now, final=True)
        recorder = self._recorder
        if recorder is not None:
            recorder.gauge(f"{self.label}.items", self.done)
            recorder.gauge(f"{self.label}.rate", update.rate)
            if recorder.progress_callback is not None:
                recorder.progress_callback(update)
        return update

    def __enter__(self) -> "ProgressTicker":
        return self

    def __exit__(self, *exc: object) -> None:
        self.finish()

    def _update(self, now: float, *, final: bool) -> ProgressUpdate:
        elapsed = max(0.0, now - self._start)
        rate = self.done / elapsed if elapsed > 0 else 0.0
        eta: float | None = None
        if self.total is not None and rate > 0 and not final:
            eta = max(0.0, (self.total - self.done) / rate)
        if final:
            eta = 0.0 if self.total is not None else None
        return ProgressUpdate(
            label=self.label,
            done=self.done,
            total=self.total,
            elapsed=elapsed,
            rate=rate,
            eta=eta,
            final=final,
        )


class _NullTicker:
    """Shared do-nothing ticker for the disabled-instrumentation path."""

    __slots__ = ()

    def tick(self, amount: int = 1) -> None:
        return None

    def finish(self) -> None:
        return None

    def __enter__(self) -> "_NullTicker":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: Singleton handed out while no recorder is installed — the hot loops
#: keep their unconditional ``tick()`` calls and allocate nothing.
NULL_TICKER = _NullTicker()


def progress_ticker(
    label: str, total: int | None = None
) -> ProgressTicker | _NullTicker:
    """A ticker bound to the installed recorder, or the no-op singleton."""
    recorder = current_recorder()
    if recorder is None:
        return NULL_TICKER
    return ProgressTicker(label, total, recorder=recorder)
