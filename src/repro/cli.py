"""Command-line interface.

Usage::

    python -m repro describe network.json
    python -m repro compute network.json --source s --sink t --rate 2
    python -m repro compute network.json -s s -t t -d 2 --method bottleneck
    python -m repro compute network.json -s s -t t -d 2 --trace
    python -m repro estimate network.json -s s -t t -d 2 --budget 20000 \
        --target-relative-error 0.05 --seed 7
    python -m repro sweep network.json -s s -t t -d 2 --availability 0.7:0.99:9 \
        --metrics-port 0 --events telemetry/
    python -m repro serve --port 0 --cache-dir cache/ --warm network.json \
        -s s -t t -d 2 --metrics-port 0
    python -m repro profile network.json -s s -t t -d 2 --method naive
    python -m repro distribution network.json -s s -t t
    python -m repro bounds network.json -s s -t t -d 2
    python -m repro runs list
    python -m repro runs diff -2 -1
    python -m repro top http://127.0.0.1:9100
    python -m repro sample-network --kind fig4 -o network.json

Networks are the JSON documents produced by :mod:`repro.graph.io`.

Every ``compute`` / ``sweep`` invocation appends a content-addressed
run record to the ledger under ``.repro/runs/`` (disable with
``--no-ledger``); ``repro runs list|show|diff`` reads it back and
``runs diff`` exits nonzero on counter regressions.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import sys
import time
from datetime import datetime
from typing import Any, Sequence

from repro._version import __version__
from repro.core.api import available_methods, compute_reliability
from repro.core.bitplane import resolve_block_bits
from repro.core.bounds import reliability_bounds
from repro.core.demand import FlowDemand
from repro.core.distribution import flow_value_distribution
from repro.core.sweep import ArrayCache, SweepSpec, compute_reliability_sweep
from repro.exceptions import ReproError, ReproValueError
from repro.flow import DEFAULT_SOLVER
from repro.graph.builders import diamond, fujita_fig2_bridge, fujita_fig4
from repro.graph.generators import bottlenecked_network
from repro.graph.io import dumps as network_to_json
from repro.graph.io import load, to_dict
from repro.graph.network import FlowNetwork
from repro.obs import (
    MetricsServer,
    ProgressUpdate,
    Recorder,
    RunLedger,
    diff_records,
    format_tree,
    make_run_record,
    record,
    telemetry_session,
    trace_to_json,
)
from repro.obs.ledger import DEFAULT_LEDGER_DIR, content_hash

__all__ = ["main", "build_parser"]

_SAMPLES = {
    "diamond": lambda: diamond(),
    "fig2": lambda: fujita_fig2_bridge(),
    "fig4": lambda: fujita_fig4(),
    "bottlenecked": lambda: bottlenecked_network(
        source_side_links=6, sink_side_links=6, num_bottlenecks=2, demand=2, seed=0
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flow reliability of networks with bottleneck links "
        "(Fujita, IPDPSW 2017).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_demand_args(p: argparse.ArgumentParser, with_rate: bool = True) -> None:
        p.add_argument("network", help="path to a network JSON file")
        p.add_argument("--source", "-s", required=True, help="source node label")
        p.add_argument("--sink", "-t", required=True, help="sink node label")
        if with_rate:
            p.add_argument("--rate", "-d", type=int, required=True, help="demand d")

    def _add_block_bits_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--block-bits",
            type=int,
            default=None,
            metavar="B",
            help="walk the realization lattices in vectorized blocks of "
            "2^B configurations (the bit-parallel kernel; composes with "
            "--workers; default: scalar kernels)",
        )

    def _add_incremental_flags(p: argparse.ArgumentParser) -> None:
        group = p.add_mutually_exclusive_group()
        group.add_argument(
            "--incremental",
            action="store_true",
            default=None,
            dest="incremental",
            help="force the Gray-walk flow-repair kernels for --method "
            "naive, bottleneck or auto (default: on when the solver "
            "supports warm starts)",
        )
        group.add_argument(
            "--no-incremental",
            action="store_false",
            dest="incremental",
            help="force cold solves for every lattice entry",
        )

    def _add_telemetry_flags(p: argparse.ArgumentParser) -> None:
        group = p.add_argument_group("telemetry")
        group.add_argument(
            "--events",
            metavar="DIR",
            default=None,
            help="stream repro.obs/events/v1 JSONL telemetry into DIR "
            "(parent trace in main.jsonl, one worker-*.jsonl per chunk)",
        )
        group.add_argument(
            "--metrics-port",
            type=int,
            default=None,
            metavar="PORT",
            help="serve live Prometheus metrics + /trace.json on PORT "
            "while the run executes (0 = ephemeral; the bound URL is "
            "printed to stderr)",
        )
        group.add_argument(
            "--metrics-linger",
            type=float,
            default=0.0,
            metavar="SECONDS",
            help="keep the metrics endpoint up this long after the run "
            "completes (for scrapers that poll on their own schedule)",
        )
        group.add_argument(
            "--ledger-dir",
            default=os.environ.get("REPRO_LEDGER_DIR", DEFAULT_LEDGER_DIR),
            metavar="DIR",
            help="run-ledger directory (default: $REPRO_LEDGER_DIR or "
            f"{DEFAULT_LEDGER_DIR})",
        )
        group.add_argument(
            "--no-ledger",
            action="store_true",
            help="do not append this run to the run ledger",
        )

    describe = sub.add_parser("describe", help="print a network summary")
    describe.add_argument("network")

    compute = sub.add_parser("compute", help="compute the reliability")
    add_demand_args(compute)
    compute.add_argument(
        "--method",
        default="auto",
        choices=available_methods(),
        help="algorithm (default: auto)",
    )
    compute.add_argument(
        "--samples",
        type=int,
        default=10_000,
        help="sample count for --method montecarlo",
    )
    compute.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --method naive-parallel, bottleneck or auto "
        "(default: serial)",
    )
    _add_block_bits_flag(compute)
    _add_incremental_flags(compute)
    compute.add_argument("--json", action="store_true", help="machine-readable output")
    compute.add_argument(
        "--trace",
        action="store_true",
        help="record the computation and print the phase tree to stderr",
    )
    compute.add_argument(
        "--trace-json",
        metavar="FILE",
        default=None,
        help="record the computation and write the JSON trace to FILE ('-' = stdout)",
    )
    _add_telemetry_flags(compute)

    estimate = sub.add_parser(
        "estimate",
        help="rare-event reliability estimation (permutation MC / splitting)",
    )
    add_demand_args(estimate)
    estimate.add_argument(
        "--variant",
        default="auto",
        choices=["auto", "permutation", "spectrum", "splitting"],
        help="estimator variant (default: auto = permutation)",
    )
    estimate.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="sample budget: permutations for the spectrum estimator, "
        "per-level population for splitting (default: variant-specific)",
    )
    estimate.add_argument(
        "--target-relative-error",
        type=float,
        default=None,
        metavar="RE",
        help="stop early once the unreliability's relative error at the "
        "chosen confidence reaches RE (permutation variant; budget "
        "permitting)",
    )
    estimate.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for the reported interval (default: 0.95)",
    )
    estimate.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed of the hierarchical random streams (default: 0); "
        "the same seed + inputs replays the estimate bit-for-bit",
    )
    estimate.add_argument(
        "--batch-size",
        type=int,
        default=2048,
        metavar="N",
        help="permutations drawn per vectorized batch (default: 2048)",
    )
    estimate.add_argument(
        "--levels",
        type=int,
        default=None,
        metavar="L",
        help="splitting levels (default: auto from the time ladder)",
    )
    _add_incremental_flags(estimate)
    estimate.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    estimate.add_argument(
        "--trace",
        action="store_true",
        help="record the estimation and print the phase tree to stderr",
    )
    estimate.add_argument(
        "--trace-json",
        metavar="FILE",
        default=None,
        help="record the estimation and write the JSON trace to FILE ('-' = stdout)",
    )
    _add_telemetry_flags(estimate)

    profile = sub.add_parser(
        "profile",
        help="compute the reliability and print the phase/counter breakdown",
    )
    add_demand_args(profile)
    profile.add_argument(
        "--method",
        default="auto",
        choices=available_methods(),
        help="algorithm (default: auto)",
    )
    profile.add_argument(
        "--samples",
        type=int,
        default=10_000,
        help="sample count for --method montecarlo",
    )
    profile.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --method naive-parallel, bottleneck or auto "
        "(default: serial)",
    )
    _add_block_bits_flag(profile)
    _add_incremental_flags(profile)
    profile.add_argument(
        "--progress",
        action="store_true",
        help="stream progress heartbeats of the exponential loops to stderr",
    )
    profile.add_argument(
        "--trace-json",
        metavar="FILE",
        default=None,
        help="also write the JSON trace to FILE ('-' = stdout)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="reliability curve over an availability / failure-scale / "
        "demand grid (one cached array build, vectorized points)",
    )
    add_demand_args(sweep)
    axis = sweep.add_mutually_exclusive_group(required=True)
    axis.add_argument(
        "--availability",
        metavar="SPEC",
        help="uniform link availability per point: 'start:stop:n' "
        "(n evenly spaced points) or a comma-separated list",
    )
    axis.add_argument(
        "--failure-scale",
        metavar="SPEC",
        help="multiply every link failure probability by a per-point "
        "factor: 'start:stop:n' or a comma-separated list",
    )
    axis.add_argument(
        "--rates",
        metavar="LIST",
        help="comma-separated demand rates to sweep (probabilities fixed; "
        "--rate is ignored)",
    )
    sweep.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="LINK=P",
        help="set link LINK's failure probability to P before sweeping "
        "(repeatable)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the realization-array build (default: serial)",
    )
    _add_block_bits_flag(sweep)
    _add_incremental_flags(sweep)
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk realization-array cache; a second "
        "run against the same DIR performs zero max-flow solves",
    )
    sweep.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="bound the array cache: least-recently-used columns are "
        "evicted (memory + disk, never racing a sharded builder's "
        ".claim) once tracked bytes exceed BYTES",
    )
    sweep.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="N",
        help="share-nothing build: N worker processes claim realization "
        "columns through --cache-dir (atomic .claim files + .npy "
        "publication), exchanging nothing but cache files; requires "
        "--cache-dir",
    )
    sweep.add_argument("--json", action="store_true", help="machine-readable output")
    _add_telemetry_flags(sweep)

    serve = sub.add_parser(
        "serve",
        help="reliability-as-a-service: a query daemon that coalesces "
        "concurrent requests into shared sweep batches (newline-delimited "
        "JSON over local TCP; see docs/SERVING.md)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: loopback)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port for the query protocol (0 = ephemeral; the bound "
        "address is printed to stderr)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent realization-array cache shared with `repro sweep "
        "--cache-dir`; queries on topologies already present answer with "
        "zero max-flow solves",
    )
    serve.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="bound the array cache: least-recently-used columns are "
        "evicted (memory + disk, never racing a sharded builder's "
        ".claim) once tracked bytes exceed BYTES",
    )
    serve.add_argument(
        "--warm",
        action="append",
        default=[],
        metavar="NETWORK",
        help="pre-build the realization arrays for this network JSON at "
        "startup (repeatable; requires -s/-t/-d for the demand)",
    )
    serve.add_argument("--source", "-s", default=None, help="warm-demand source node")
    serve.add_argument("--sink", "-t", default=None, help="warm-demand sink node")
    serve.add_argument(
        "--rate", "-d", type=int, default=None, help="warm-demand rate d"
    )
    serve.add_argument(
        "--coalesce-window",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="after the first query of a round arrives, keep draining "
        "newly-readable sockets this long so near-simultaneous queries "
        "merge into one batch (default: 0.005)",
    )
    serve.add_argument(
        "--solver",
        default=None,
        help=f"max-flow solver (default: {DEFAULT_SOLVER})",
    )
    _add_telemetry_flags(serve)

    runs = sub.add_parser("runs", help="inspect and compare the run ledger")
    # Shared by every runs subcommand so the flag may appear after the
    # subcommand name (``repro runs list --ledger-dir DIR``).
    runs_common = argparse.ArgumentParser(add_help=False)
    runs_common.add_argument(
        "--ledger-dir",
        default=DEFAULT_LEDGER_DIR,
        metavar="DIR",
        help=f"run-ledger directory (default: {DEFAULT_LEDGER_DIR})",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", parents=[runs_common], help="list recorded runs, oldest first"
    )
    runs_list.add_argument("--json", action="store_true", help="machine-readable output")
    runs_show = runs_sub.add_parser(
        "show", parents=[runs_common], help="print one full run record"
    )
    runs_show.add_argument(
        "ref",
        help="run reference: id prefix, negative index (-1 = latest), "
        "or a path to a record JSON file",
    )
    runs_diff = runs_sub.add_parser(
        "diff",
        parents=[runs_common],
        help="compare two runs; exits 1 when counters regressed "
        "(latency regressions are advisory unless --strict-latency)",
    )
    runs_diff.add_argument("base", help="baseline run reference (or BENCH_*.json path)")
    runs_diff.add_argument("other", help="candidate run reference")
    runs_diff.add_argument(
        "--tolerance",
        type=float,
        default=1.25,
        metavar="RATIO",
        help="growth ratio above which a counter/phase is a regression "
        "(default: 1.25)",
    )
    runs_diff.add_argument(
        "--strict-latency",
        action="store_true",
        help="treat wallclock regressions as fatal too",
    )
    runs_diff.add_argument("--json", action="store_true", help="machine-readable output")

    top = sub.add_parser(
        "top",
        help="in-terminal phase/worker/cache view of a live metrics endpoint",
    )
    top.add_argument("url", help="endpoint base URL, e.g. http://127.0.0.1:9100")
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh interval (default: 1.0)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: until the endpoint goes away)",
    )

    bounds = sub.add_parser("bounds", help="cheap lower/upper bounds")
    add_demand_args(bounds)

    dist = sub.add_parser("distribution", help="full PMF of the surviving max-flow")
    add_demand_args(dist, with_rate=False)

    importance = sub.add_parser("importance", help="rank links by importance")
    add_demand_args(importance)
    importance.add_argument(
        "--measure",
        default="birnbaum",
        choices=[
            "birnbaum",
            "improvement_potential",
            "risk_achievement_worth",
            "fussell_vesely",
        ],
        help="ranking measure (default: birnbaum)",
    )

    sample = sub.add_parser("sample-network", help="write a sample network JSON")
    sample.add_argument(
        "--kind", default="fig4", choices=sorted(_SAMPLES), help="which sample"
    )
    sample.add_argument("--output", "-o", default="-", help="output path ('-' = stdout)")
    return parser


def _cmd_describe(args: argparse.Namespace) -> int:
    net = load(args.network)
    print(net.describe())
    return 0


class _Terminated(Exception):
    """Raised by the SIGTERM handler so the run unwinds cleanly.

    Unwinding as an exception (instead of dying mid-write) is what lets
    the telemetry sink flush its final lines and the ledger append an
    ``interrupted`` record — the kill-safety contract.
    """


def _raise_terminated(signum: int, frame: Any) -> None:
    raise _Terminated(f"terminated by signal {signum}")


class _ObsSession:
    """Per-invocation observability plumbing for compute/sweep.

    Owns everything the telemetry flags switch on: the recorder (plain
    or streaming to ``--events DIR``), the ``--metrics-port`` endpoint,
    the SIGTERM handler, and the ledger append.  The command body runs
    inside the ``with`` block and reports its outcome through
    :meth:`complete`; a missing ``complete`` (exception or SIGTERM)
    lands in the ledger as ``interrupted`` rather than not at all.

    With ``--no-ledger`` and no tracing/events/metrics flags the session
    is inert — no recorder is installed, preserving the zero-overhead
    path the obs benchmarks guard.
    """

    def __init__(
        self,
        args: argparse.Namespace,
        *,
        command: str,
        net: FlowNetwork | None = None,
        demand: FlowDemand | None = None,
        input_payload: dict[str, Any] | None = None,
        params: dict[str, Any],
    ) -> None:
        self.args = args
        self.command = command
        self.params = {k: v for k, v in params.items() if v is not None}
        self.tracing = bool(
            getattr(args, "trace", False) or getattr(args, "trace_json", None)
        )
        self.recorder: Recorder | None = None
        self.server: MetricsServer | None = None
        self._record_cm: Any = None
        self._old_sigterm: Any = None
        self._value: Any = None
        self._flow_calls: int | None = None
        self._completed = False
        # The input fingerprint covers the network and the demand, not
        # the method/options: diffing "same computation, different
        # engine" is exactly what the ledger is for.  Commands without a
        # single input network (``serve``) fingerprint their
        # configuration via ``input_payload`` instead.
        if input_payload is None:
            if net is None or demand is None:
                raise ReproValueError("session needs net+demand or input_payload")
            input_payload = {
                "net": to_dict(net),
                "source": demand.source,
                "sink": demand.sink,
                "rate": demand.rate,
            }
        self._input_fp = content_hash(input_payload)

    @property
    def active(self) -> bool:
        return (
            not self.args.no_ledger
            or self.tracing
            or self.args.events is not None
            or self.args.metrics_port is not None
        )

    def __enter__(self) -> "_ObsSession":
        if not self.active:
            return self
        if self.args.metrics_port is not None:
            # Bind *before* the telemetry session opens so the ephemeral
            # port (``--metrics-port 0``) rides the ``start`` event's
            # meta and the ledger params; the real recorder is swapped
            # in below (handlers read ``server.recorder`` per request).
            self.server = MetricsServer(
                Recorder(),
                port=self.args.metrics_port,
                spool_dir=self.args.events,
            )
            self.params["metrics_port"] = self.server.port
        if self.args.events is not None:
            self._record_cm = telemetry_session(
                self.args.events,
                meta={"command": self.command, **self.params},
            )
        else:
            self._record_cm = record()
        self.recorder = self._record_cm.__enter__()
        if self.server is not None:
            self.server.recorder = self.recorder
            print(f"metrics endpoint: {self.server.url}", file=sys.stderr, flush=True)
        try:
            self._old_sigterm = signal.signal(signal.SIGTERM, _raise_terminated)
        except ValueError:  # not the main thread (embedded use)
            self._old_sigterm = None
        return self

    def complete(self, *, value: Any = None, flow_calls: int | None = None) -> None:
        """Mark the run completed and stash its headline outcome."""
        self._value = value
        self._flow_calls = flow_calls
        self._completed = True

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._old_sigterm is not None:
            signal.signal(signal.SIGTERM, self._old_sigterm)
        if not self.active:
            return False
        interrupted = exc_type is _Terminated
        if self._record_cm is not None:
            # Finishes the recorder (emitting the telemetry ``finish``
            # event) and closes the sink — before the ledger reads the
            # totals, and before any linger window starts.
            self._record_cm.__exit__(exc_type, exc, tb)
        if not self.args.no_ledger and (interrupted or exc_type is None):
            self._append_ledger(interrupted=interrupted)
        if self.server is not None:
            if exc_type is None and self.args.metrics_linger > 0:
                time.sleep(self.args.metrics_linger)
            self.server.stop()
        return False

    def _append_ledger(self, *, interrupted: bool) -> None:
        rec = self.recorder
        assert rec is not None  # active sessions always install one
        status = "interrupted" if interrupted or not self._completed else "completed"
        run_record = make_run_record(
            command=self.command,
            input_fingerprint=self._input_fp,
            params=self.params,
            status=status,
            seconds=rec.root.seconds,
            counters=rec.counter_totals(),
            phases=[
                {"name": child.name, "seconds": child.seconds}
                for child in rec.root.children
            ],
            value=self._value,
            flow_calls=self._flow_calls,
            solver=DEFAULT_SOLVER,
        )
        run_id = RunLedger(self.args.ledger_dir).append(run_record)
        print(f"run {run_id} recorded ({status})", file=sys.stderr)


def _write_trace_json(recorder: Recorder, destination: str) -> None:
    text = trace_to_json(recorder)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote trace to {destination}", file=sys.stderr)


def _print_progress(update: ProgressUpdate) -> None:
    if update.total is not None:
        eta = f", eta {update.eta:.1f}s" if update.eta is not None else ""
        line = (
            f"{update.label}: {update.done}/{update.total}"
            f" ({update.rate:.0f}/s{eta})"
        )
    else:
        line = f"{update.label}: {update.done} ({update.rate:.0f}/s)"
    print(line, file=sys.stderr)


def _cmd_compute(args: argparse.Namespace) -> int:
    # Validate the option/method pairing before load(): a bad pairing
    # must not be masked by (or ordered after) file-system side effects.
    options = {}
    if args.method in ("montecarlo", "montecarlo-stratified"):
        options["num_samples"] = args.samples
    options.update(_workers_option(args))
    options.update(_block_bits_option(args))
    options.update(_incremental_option(args))
    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    session = _ObsSession(
        args,
        command="compute",
        net=net,
        demand=demand,
        params={
            "method": args.method,
            "workers": args.workers,
            "block_bits": args.block_bits,
            "incremental": args.incremental,
        },
    )
    with session:
        result = compute_reliability(net, demand=demand, method=args.method, **options)
        session.complete(
            value=result.value, flow_calls=getattr(result, "flow_calls", None)
        )
    recorder = session.recorder
    if args.trace and recorder is not None:
        print(format_tree(recorder, title=f"phases ({result.method})"), file=sys.stderr)
    if args.trace_json is not None and recorder is not None:
        _write_trace_json(recorder, args.trace_json)
    if args.json:
        payload = {
            "reliability": result.value,
            "method": result.method,
            "source": args.source,
            "sink": args.sink,
            "rate": args.rate,
        }
        if hasattr(result, "low"):
            payload["interval"] = [result.low, result.high]
        if hasattr(result, "flow_calls"):
            payload["flow_calls"] = result.flow_calls
        print(json.dumps(payload, indent=2))
    else:
        print(f"reliability = {result.value:.10f}  (method: {result.method})")
        if hasattr(result, "low"):
            print(f"{result.confidence:.0%} interval: [{result.low:.6f}, {result.high:.6f}]")
        elif result.flow_calls:
            print(f"max-flow calls: {result.flow_calls}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.core.rare import rare_reliability

    # Eager option validation before load(), like compute.
    if args.budget is not None and args.budget < 1:
        raise ReproValueError("--budget must be positive")
    if args.target_relative_error is not None and args.variant == "splitting":
        raise ReproValueError(
            "--target-relative-error applies to the permutation variant only"
        )
    options: dict[str, Any] = dict(
        variant=args.variant,
        num_samples=args.budget,
        confidence=args.confidence,
        seed=args.seed,
        batch_size=args.batch_size,
        num_levels=args.levels,
    )
    if args.target_relative_error is not None:
        options["target_relative_error"] = args.target_relative_error
    options.update(_incremental_option(args))
    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    session = _ObsSession(
        args,
        command="estimate",
        net=net,
        demand=demand,
        params={
            "variant": args.variant,
            "budget": args.budget,
            "target_relative_error": args.target_relative_error,
            "confidence": args.confidence,
            "seed": args.seed,
            "incremental": args.incremental,
        },
    )
    with session:
        result = rare_reliability(net, demand, **options)
        session.complete(
            value=result.value, flow_calls=result.details.get("flow_calls")
        )
    recorder = session.recorder
    if args.trace and recorder is not None:
        print(format_tree(recorder, title=f"phases ({result.method})"), file=sys.stderr)
    if args.trace_json is not None and recorder is not None:
        _write_trace_json(recorder, args.trace_json)
    details = result.details
    if args.json:
        payload = {
            "reliability": result.value,
            "interval": [result.low, result.high],
            "confidence": result.confidence,
            "method": result.method,
            "unreliability": details.get("unreliability"),
            "relative_error": _json_safe(details.get("relative_error")),
            "num_samples": result.num_samples,
            "seed": details.get("seed"),
            "flow_calls": details.get("flow_calls"),
            "source": args.source,
            "sink": args.sink,
            "rate": args.rate,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"reliability = {result.value:.10f}  (method: {result.method})")
        print(
            f"{result.confidence:.0%} interval: "
            f"[{result.low:.10f}, {result.high:.10f}]"
        )
        unreliability = details.get("unreliability")
        if unreliability is not None:
            print(f"unreliability = {unreliability:.6e}")
        relative_error = details.get("relative_error")
        if relative_error is not None and relative_error == relative_error:
            print(f"relative error = {relative_error:.2%}")
        print(f"samples: {result.num_samples}  seed: {details.get('seed')}")
    return 0


def _json_safe(value: Any) -> Any:
    """JSON has no inf/nan: map non-finite floats to None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _cmd_profile(args: argparse.Namespace) -> int:
    # Same eager option validation as compute: fail before load().
    options = {}
    if args.method in ("montecarlo", "montecarlo-stratified"):
        options["num_samples"] = args.samples
    options.update(_workers_option(args))
    options.update(_block_bits_option(args))
    options.update(_incremental_option(args))
    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    recorder = Recorder(progress_callback=_print_progress if args.progress else None)
    with record(recorder):
        result = compute_reliability(net, demand=demand, method=args.method, **options)
    print(f"reliability = {result.value:.10f}  (method: {result.method})")
    if getattr(result, "flow_calls", 0):
        print(f"max-flow calls: {result.flow_calls}")
    print()
    print(format_tree(recorder, title=f"phases ({result.method})"))
    totals = recorder.counter_totals()
    if totals:
        print()
        print("counters:")
        for name in sorted(totals):
            value = totals[name]
            shown = f"{value:.6g}" if isinstance(value, float) else str(value)
            print(f"  {name} = {shown}")
    if args.trace_json is not None:
        _write_trace_json(recorder, args.trace_json)
    return 0


def _parse_grid(spec: str, option: str) -> list[float]:
    """Sweep grid syntax: ``start:stop:n`` (evenly spaced) or ``a,b,c``."""
    text = spec.strip()
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise ReproValueError(
                f"{option} grid must be 'start:stop:n', got {spec!r}"
            )
        try:
            start, stop, n = float(parts[0]), float(parts[1]), int(parts[2])
        except ValueError as exc:
            raise ReproValueError(f"cannot parse {option} grid {spec!r}") from exc
        if n < 1:
            raise ReproValueError(f"{option} grid needs n >= 1, got {n}")
        if n == 1:
            return [start]
        return [start + (stop - start) * i / (n - 1) for i in range(n)]
    try:
        values = [float(p) for p in text.split(",") if p.strip()]
    except ValueError as exc:
        raise ReproValueError(f"cannot parse {option} grid {spec!r}") from exc
    if not values:
        raise ReproValueError(f"{option} grid {spec!r} is empty")
    return values


def _parse_link_overrides(pairs: list[str]) -> dict[int, float]:
    """``--override LINK=P`` arguments into a failure-probability patch."""
    overrides: dict[int, float] = {}
    for pair in pairs:
        head, sep, tail = pair.partition("=")
        if not sep:
            raise ReproValueError(f"--override must be LINK=P, got {pair!r}")
        try:
            overrides[int(head)] = float(tail)
        except ValueError as exc:
            raise ReproValueError(f"--override must be LINK=P, got {pair!r}") from exc
    return overrides


def _cmd_sweep(args: argparse.Namespace) -> int:
    # Eager option validation before load(), like compute/profile.
    if args.workers is not None and args.workers < 1:
        raise ReproValueError(f"--workers must be >= 1, got {args.workers}")
    block_bits = resolve_block_bits(args.block_bits)
    if args.shard is not None:
        if args.shard < 1:
            raise ReproValueError(f"--shard must be >= 1, got {args.shard}")
        if args.cache_dir is None:
            raise ReproValueError("--shard requires --cache-dir (the work queue)")
        if args.workers is not None:
            raise ReproValueError(
                "--shard and --workers are different parallelisms; pick one"
            )
    overrides = _parse_link_overrides(args.override)
    if args.availability is not None:
        spec = SweepSpec.availability(_parse_grid(args.availability, "--availability"))
    elif args.failure_scale is not None:
        spec = SweepSpec.failure_scale(
            _parse_grid(args.failure_scale, "--failure-scale")
        )
    else:
        try:
            rates = [int(r) for r in args.rates.split(",") if r.strip()]
        except ValueError as exc:
            raise ReproValueError(f"cannot parse --rates list {args.rates!r}") from exc
        spec = SweepSpec.demand_rates(rates)
    if args.cache_max_bytes is not None and args.cache_dir is None:
        raise ReproValueError("--cache-max-bytes requires --cache-dir")
    net = load(args.network)
    if overrides:
        net = net.with_failure_probabilities(overrides)
    demand = FlowDemand(args.source, args.sink, args.rate)
    cache = (
        ArrayCache(args.cache_dir, max_bytes=args.cache_max_bytes)
        if args.cache_dir is not None
        else None
    )
    session = _ObsSession(
        args,
        command="sweep",
        net=net,
        demand=demand,
        params={
            "kind": spec.kind,
            "points": len(spec),
            "workers": args.workers,
            "block_bits": block_bits,
            "shard": args.shard,
            "incremental": args.incremental,
            "cache_dir": args.cache_dir,
            "cache_max_bytes": args.cache_max_bytes,
        },
    )
    with session:
        if args.shard is not None:
            from repro.core.shard import sharded_sweep  # local: pools live there

            result = sharded_sweep(
                net,
                demand,
                sweep=spec,
                shards=args.shard,
                cache_dir=args.cache_dir,
                incremental=args.incremental,
                block_bits=block_bits,
            )
        else:
            result = compute_reliability_sweep(
                net,
                demand,
                sweep=spec,
                workers=args.workers,
                incremental=args.incremental,
                block_bits=block_bits,
                cache=cache,
            )
        session.complete(flow_calls=result.flow_calls)
    stats = result.cache_stats
    if args.json:
        payload = {
            "kind": result.kind,
            "source": args.source,
            "sink": args.sink,
            "rate": args.rate,
            "points": [
                {"x": x, "reliability": r.value}
                for x, r in zip(result.xs, result.results)
            ],
            "flow_calls": result.flow_calls,
            "cache": stats,
        }
        print(json.dumps(payload, indent=2))
    else:
        label = {
            "availability": "availability",
            "failure-scale": "scale",
            "demand": "rate",
        }[result.kind]
        print(f"{label:>14}  reliability")
        for x, r in zip(result.xs, result.results):
            shown = f"{x:.6g}" if isinstance(x, float) else str(x)
            print(f"{shown:>14}  {r.value:.10f}")
        print(f"max-flow calls: {result.flow_calls}")
        print(
            f"array cache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['bytes_read'] + stats['bytes_written']} bytes"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import ReliabilityServer  # local: daemon-only path

    if args.cache_max_bytes is not None and args.cache_dir is None:
        raise ReproValueError("--cache-max-bytes requires --cache-dir")
    if args.warm and (args.source is None or args.sink is None or args.rate is None):
        raise ReproValueError("--warm requires --source/--sink/--rate")
    warm_nets = [load(path) for path in args.warm]
    cache = ArrayCache(args.cache_dir, max_bytes=args.cache_max_bytes)
    # Bind before the session opens so the bound (possibly ephemeral)
    # port rides the telemetry ``start`` event and the ledger params.
    server = ReliabilityServer(
        host=args.host,
        port=args.port,
        cache=cache,
        solver=args.solver,
        coalesce_window=args.coalesce_window,
    )
    session = _ObsSession(
        args,
        command="serve",
        input_payload={
            "serve": {
                "host": args.host,
                "cache_dir": args.cache_dir,
                "cache_max_bytes": args.cache_max_bytes,
                "solver": args.solver,
                "warm": sorted(args.warm),
            }
        },
        params={
            "host": server.host,
            "port": server.port,
            "cache_dir": args.cache_dir,
            "cache_max_bytes": args.cache_max_bytes,
            "coalesce_window": args.coalesce_window,
            "warm": len(args.warm) or None,
        },
    )
    try:
        with session:
            print(f"serving on {server.address}", file=sys.stderr, flush=True)
            for path, warm_net in zip(args.warm, warm_nets):
                demand = FlowDemand(args.source, args.sink, args.rate)
                solves = server.warm(warm_net, demand)
                print(
                    f"warmed {path}: {solves} max-flow solves",
                    file=sys.stderr,
                    flush=True,
                )
            # Runs until a protocol ``shutdown`` op (ledger: completed)
            # or SIGTERM, which unwinds through select() as _Terminated
            # (ledger: interrupted) — the same kill-safety contract as
            # compute/sweep.
            server.serve_forever()
            session.complete(value=server.queries_served)
    finally:
        server.close()
    stats = server.cache.stats()
    print(
        f"served {server.queries_served} queries in {server.rounds} "
        f"batch rounds ({server.torn_requests} torn); array cache: "
        f"{stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['evictions']} evictions",
        file=sys.stderr,
    )
    return 0


def _format_unix(stamp: Any) -> str:
    if not isinstance(stamp, (int, float)):
        return "-"
    return datetime.fromtimestamp(float(stamp)).strftime("%Y-%m-%d %H:%M:%S")


def _cmd_runs(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger_dir)
    if args.runs_command == "list":
        entries = ledger.entries()
        if args.json:
            print(json.dumps(entries, indent=2))
            return 0
        if not entries:
            print(f"no runs recorded under {ledger.directory}")
            return 0
        print(
            f"{'id':<13} {'when':<19}  {'command':<8} {'status':<12} "
            f"{'seconds':>9} {'solves':>8}  value"
        )
        for entry in entries:
            seconds = entry.get("seconds")
            shown_seconds = (
                f"{seconds:.3f}" if isinstance(seconds, (int, float)) else "-"
            )
            solves = entry.get("flow_calls")
            value = entry.get("value")
            shown_value = f"{value:.10g}" if isinstance(value, float) else value
            print(
                f"{str(entry.get('id', '?')):<13} "
                f"{_format_unix(entry.get('unix')):<19}  "
                f"{str(entry.get('command', '?')):<8} "
                f"{str(entry.get('status', '?')):<12} "
                f"{shown_seconds:>9} "
                f"{solves if solves is not None else '-':>8}  "
                f"{shown_value if shown_value is not None else '-'}"
            )
        return 0
    if args.runs_command == "show":
        print(json.dumps(ledger.resolve(args.ref), indent=2, default=str))
        return 0
    # diff
    base = ledger.resolve(args.base)
    other = ledger.resolve(args.other)
    diff = diff_records(base, other, tolerance=args.tolerance)
    if args.json:
        print(
            json.dumps(
                {
                    "base": diff.base_id,
                    "other": diff.other_id,
                    "same_input": diff.same_input,
                    "counter_regressions": diff.counter_regressions,
                    "counter_improvements": diff.counter_improvements,
                    "latency_regressions": diff.latency_regressions,
                    "ok": diff.ok_strict if args.strict_latency else diff.ok,
                },
                indent=2,
            )
        )
    else:
        print(f"base  {diff.base_id}  ->  other  {diff.other_id}")
        if not diff.same_input:
            print("note: the two runs fingerprint different inputs")
        for entry in diff.counter_regressions:
            ratio = f"{entry['ratio']:.2f}x" if entry["ratio"] else "new"
            print(
                f"REGRESSION  {entry['name']}: {entry['base']:g} -> "
                f"{entry['other']:g} ({ratio})"
            )
        for entry in diff.counter_improvements:
            print(
                f"improved    {entry['name']}: {entry['base']:g} -> "
                f"{entry['other']:g}"
            )
        for entry in diff.latency_regressions:
            tag = "LATENCY" if args.strict_latency else "latency (advisory)"
            print(
                f"{tag}  {entry['name']}: {entry['base']:.3f}s -> "
                f"{entry['other']:.3f}s"
            )
        if diff.ok and not diff.latency_regressions:
            print("no regressions")
    ok = diff.ok_strict if args.strict_latency else diff.ok
    return 0 if ok else 1


def _fetch_json(url: str) -> dict[str, Any]:
    import urllib.request

    with urllib.request.urlopen(url, timeout=5.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _render_top_frame(payload: dict[str, Any]) -> str:
    lines: list[str] = []
    seconds = payload.get("seconds", 0.0)
    lines.append(f"repro top — trace {seconds:.2f}s")
    lines.append("")
    lines.append(f"{'phase':<28} {'seconds':>9}  counters")
    for phase in payload.get("spans", []):
        own = phase.get("counters", {})
        shown = ", ".join(f"{k}={v:g}" for k, v in sorted(own.items())) or "-"
        lines.append(f"{phase.get('name', '?'):<28} {phase.get('seconds', 0.0):>9.3f}  {shown}")
    counters = payload.get("counters", {})
    if counters:
        lines.append("")
        lines.append("totals:")
        for name in sorted(counters):
            lines.append(f"  {name:<28} {counters[name]:g}")
    cache = {k: v for k, v in counters.items() if k.startswith("array_cache_")}
    if cache:
        lines.append("")
        lines.append(
            "cache: "
            + ", ".join(f"{k.removeprefix('array_cache_')}={v:g}" for k, v in sorted(cache.items()))
        )
    workers = payload.get("workers")
    if workers:
        lines.append("")
        lines.append(
            f"workers: {workers.get('files', 0)} chunk streams, "
            f"{workers.get('events', 0)} events"
        )
        for name, value in sorted((workers.get("counters") or {}).items()):
            lines.append(f"  worker {name:<21} {value:g}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    if "://" not in base:
        base = "http://" + base
    frames = 0
    while True:
        try:
            payload = _fetch_json(base + "/trace.json")
        except ValueError as exc:
            raise ReproValueError(f"bad endpoint URL {args.url!r}: {exc}") from exc
        except OSError as exc:
            if frames == 0:
                raise ReproValueError(f"cannot reach {base}: {exc}") from exc
            print("endpoint gone; exiting", file=sys.stderr)
            return 0
        if frames and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(_render_top_frame(payload))
        frames += 1
        if args.iterations is not None and frames >= args.iterations:
            return 0
        time.sleep(max(0.0, args.interval))


def _cmd_bounds(args: argparse.Namespace) -> int:
    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    low, high = reliability_bounds(net, demand)
    print(f"lower bound = {low:.10f}")
    print(f"upper bound = {high:.10f}")
    return 0


def _cmd_distribution(args: argparse.Namespace) -> int:
    net = load(args.network)
    dist = flow_value_distribution(net, args.source, args.sink)
    print("rate  P(maxflow == rate)  P(maxflow >= rate)")
    for v, p in enumerate(dist.pmf):
        print(f"{v:>4}  {p:>18.10f}  {dist.reliability(v):>18.10f}")
    print(f"expected deliverable rate: {dist.expected_value:.6f}")
    return 0


def _cmd_importance(args: argparse.Namespace) -> int:
    from repro.core.importance import link_importances

    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    table = link_importances(net, demand)
    ranked = sorted(table, key=lambda imp: -getattr(imp, args.measure))
    print("link  birnbaum    improvement  RAW         fussell-vesely")
    for imp in ranked:
        link = net.link(imp.link_index)
        print(
            f"e{imp.link_index:<4} {imp.birnbaum:<11.6f} "
            f"{imp.improvement_potential:<12.6f} {imp.risk_achievement_worth:<11.4f} "
            f"{imp.fussell_vesely:<11.6f}  ({link.tail!r} -> {link.head!r})"
        )
    return 0


def _cmd_sample_network(args: argparse.Namespace) -> int:
    net = _SAMPLES[args.kind]()
    text = network_to_json(net)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


#: Methods that accept a ``workers=`` option (``auto`` forwards it to
#: the bottleneck engine when that path wins).
_WORKERS_METHODS = ("naive-parallel", "bottleneck", "auto")


def _workers_option(args: argparse.Namespace) -> dict[str, int]:
    """Validate ``--workers`` and turn it into a compute option."""
    if args.workers is None:
        return {}
    if args.workers < 1:
        raise ReproValueError(f"--workers must be >= 1, got {args.workers}")
    if args.method not in _WORKERS_METHODS:
        raise ReproValueError(
            f"--workers is not supported by method {args.method!r}; "
            f"use one of: {', '.join(_WORKERS_METHODS)}"
        )
    return {"workers": args.workers}


#: Methods with a bit-parallel block-kernel path (``auto`` forwards the
#: option to the bottleneck engine when that path wins).
_BLOCK_BITS_METHODS = ("bottleneck", "auto")


def _block_bits_option(args: argparse.Namespace) -> dict[str, int]:
    """Validate ``--block-bits`` eagerly and turn it into an option."""
    if args.block_bits is None:
        return {}
    resolved = resolve_block_bits(args.block_bits)
    assert resolved is not None  # non-None in, non-None out
    if args.method not in _BLOCK_BITS_METHODS:
        raise ReproValueError(
            f"--block-bits is not supported by method {args.method!r}; "
            f"use one of: {', '.join(_BLOCK_BITS_METHODS)}"
        )
    return {"block_bits": resolved}


#: Methods with a Gray-walk flow-repair path (``auto`` forwards the
#: toggle to whichever of them wins the dispatch).
_INCREMENTAL_METHODS = ("naive", "bottleneck", "auto")


def _incremental_option(args: argparse.Namespace) -> dict[str, bool]:
    """Validate ``--incremental``/``--no-incremental`` into an option."""
    if args.incremental is None:
        return {}
    flag = "--incremental" if args.incremental else "--no-incremental"
    if args.method not in _INCREMENTAL_METHODS:
        raise ReproValueError(
            f"{flag} is not supported by method {args.method!r}; "
            f"use one of: {', '.join(_INCREMENTAL_METHODS)}"
        )
    return {"incremental": args.incremental}


_COMMANDS = {
    "describe": _cmd_describe,
    "compute": _cmd_compute,
    "estimate": _cmd_estimate,
    "profile": _cmd_profile,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "runs": _cmd_runs,
    "top": _cmd_top,
    "bounds": _cmd_bounds,
    "distribution": _cmd_distribution,
    "importance": _cmd_importance,
    "sample-network": _cmd_sample_network,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except _Terminated:
        # The telemetry sink was flushed and the ledger already holds
        # the ``interrupted`` record (see _ObsSession.__exit__).
        print("terminated", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
