"""Command-line interface.

Usage::

    python -m repro describe network.json
    python -m repro compute network.json --source s --sink t --rate 2
    python -m repro compute network.json -s s -t t -d 2 --method bottleneck
    python -m repro compute network.json -s s -t t -d 2 --trace
    python -m repro profile network.json -s s -t t -d 2 --method naive
    python -m repro distribution network.json -s s -t t
    python -m repro bounds network.json -s s -t t -d 2
    python -m repro sample-network --kind fig4 -o network.json

Networks are the JSON documents produced by :mod:`repro.graph.io`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro._version import __version__
from repro.core.api import available_methods, compute_reliability
from repro.core.bounds import reliability_bounds
from repro.core.demand import FlowDemand
from repro.core.distribution import flow_value_distribution
from repro.core.sweep import ArrayCache, SweepSpec, compute_reliability_sweep
from repro.exceptions import ReproError, ReproValueError
from repro.graph.builders import diamond, fujita_fig2_bridge, fujita_fig4
from repro.graph.generators import bottlenecked_network
from repro.graph.io import dumps as network_to_json
from repro.graph.io import load
from repro.obs import ProgressUpdate, Recorder, format_tree, record, trace_to_json

__all__ = ["main", "build_parser"]

_SAMPLES = {
    "diamond": lambda: diamond(),
    "fig2": lambda: fujita_fig2_bridge(),
    "fig4": lambda: fujita_fig4(),
    "bottlenecked": lambda: bottlenecked_network(
        source_side_links=6, sink_side_links=6, num_bottlenecks=2, demand=2, seed=0
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flow reliability of networks with bottleneck links "
        "(Fujita, IPDPSW 2017).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_demand_args(p: argparse.ArgumentParser, with_rate: bool = True) -> None:
        p.add_argument("network", help="path to a network JSON file")
        p.add_argument("--source", "-s", required=True, help="source node label")
        p.add_argument("--sink", "-t", required=True, help="sink node label")
        if with_rate:
            p.add_argument("--rate", "-d", type=int, required=True, help="demand d")

    def _add_incremental_flags(p: argparse.ArgumentParser) -> None:
        group = p.add_mutually_exclusive_group()
        group.add_argument(
            "--incremental",
            action="store_true",
            default=None,
            dest="incremental",
            help="force the Gray-walk flow-repair kernels for --method "
            "naive, bottleneck or auto (default: on when the solver "
            "supports warm starts)",
        )
        group.add_argument(
            "--no-incremental",
            action="store_false",
            dest="incremental",
            help="force cold solves for every lattice entry",
        )

    describe = sub.add_parser("describe", help="print a network summary")
    describe.add_argument("network")

    compute = sub.add_parser("compute", help="compute the reliability")
    add_demand_args(compute)
    compute.add_argument(
        "--method",
        default="auto",
        choices=available_methods(),
        help="algorithm (default: auto)",
    )
    compute.add_argument(
        "--samples",
        type=int,
        default=10_000,
        help="sample count for --method montecarlo",
    )
    compute.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --method naive-parallel, bottleneck or auto "
        "(default: serial)",
    )
    _add_incremental_flags(compute)
    compute.add_argument("--json", action="store_true", help="machine-readable output")
    compute.add_argument(
        "--trace",
        action="store_true",
        help="record the computation and print the phase tree to stderr",
    )
    compute.add_argument(
        "--trace-json",
        metavar="FILE",
        default=None,
        help="record the computation and write the JSON trace to FILE ('-' = stdout)",
    )

    profile = sub.add_parser(
        "profile",
        help="compute the reliability and print the phase/counter breakdown",
    )
    add_demand_args(profile)
    profile.add_argument(
        "--method",
        default="auto",
        choices=available_methods(),
        help="algorithm (default: auto)",
    )
    profile.add_argument(
        "--samples",
        type=int,
        default=10_000,
        help="sample count for --method montecarlo",
    )
    profile.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --method naive-parallel, bottleneck or auto "
        "(default: serial)",
    )
    _add_incremental_flags(profile)
    profile.add_argument(
        "--progress",
        action="store_true",
        help="stream progress heartbeats of the exponential loops to stderr",
    )
    profile.add_argument(
        "--trace-json",
        metavar="FILE",
        default=None,
        help="also write the JSON trace to FILE ('-' = stdout)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="reliability curve over an availability / failure-scale / "
        "demand grid (one cached array build, vectorized points)",
    )
    add_demand_args(sweep)
    axis = sweep.add_mutually_exclusive_group(required=True)
    axis.add_argument(
        "--availability",
        metavar="SPEC",
        help="uniform link availability per point: 'start:stop:n' "
        "(n evenly spaced points) or a comma-separated list",
    )
    axis.add_argument(
        "--failure-scale",
        metavar="SPEC",
        help="multiply every link failure probability by a per-point "
        "factor: 'start:stop:n' or a comma-separated list",
    )
    axis.add_argument(
        "--rates",
        metavar="LIST",
        help="comma-separated demand rates to sweep (probabilities fixed; "
        "--rate is ignored)",
    )
    sweep.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="LINK=P",
        help="set link LINK's failure probability to P before sweeping "
        "(repeatable)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the realization-array build (default: serial)",
    )
    _add_incremental_flags(sweep)
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk realization-array cache; a second "
        "run against the same DIR performs zero max-flow solves",
    )
    sweep.add_argument("--json", action="store_true", help="machine-readable output")

    bounds = sub.add_parser("bounds", help="cheap lower/upper bounds")
    add_demand_args(bounds)

    dist = sub.add_parser("distribution", help="full PMF of the surviving max-flow")
    add_demand_args(dist, with_rate=False)

    importance = sub.add_parser("importance", help="rank links by importance")
    add_demand_args(importance)
    importance.add_argument(
        "--measure",
        default="birnbaum",
        choices=[
            "birnbaum",
            "improvement_potential",
            "risk_achievement_worth",
            "fussell_vesely",
        ],
        help="ranking measure (default: birnbaum)",
    )

    sample = sub.add_parser("sample-network", help="write a sample network JSON")
    sample.add_argument(
        "--kind", default="fig4", choices=sorted(_SAMPLES), help="which sample"
    )
    sample.add_argument("--output", "-o", default="-", help="output path ('-' = stdout)")
    return parser


def _cmd_describe(args: argparse.Namespace) -> int:
    net = load(args.network)
    print(net.describe())
    return 0


def _write_trace_json(recorder: Recorder, destination: str) -> None:
    text = trace_to_json(recorder)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote trace to {destination}", file=sys.stderr)


def _print_progress(update: ProgressUpdate) -> None:
    if update.total is not None:
        eta = f", eta {update.eta:.1f}s" if update.eta is not None else ""
        line = (
            f"{update.label}: {update.done}/{update.total}"
            f" ({update.rate:.0f}/s{eta})"
        )
    else:
        line = f"{update.label}: {update.done} ({update.rate:.0f}/s)"
    print(line, file=sys.stderr)


def _cmd_compute(args: argparse.Namespace) -> int:
    # Validate the option/method pairing before load(): a bad pairing
    # must not be masked by (or ordered after) file-system side effects.
    options = {}
    if args.method in ("montecarlo", "montecarlo-stratified"):
        options["num_samples"] = args.samples
    options.update(_workers_option(args))
    options.update(_incremental_option(args))
    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    tracing = args.trace or args.trace_json is not None
    if tracing:
        with record() as recorder:
            result = compute_reliability(
                net, demand=demand, method=args.method, **options
            )
        if args.trace:
            print(format_tree(recorder, title=f"phases ({result.method})"), file=sys.stderr)
        if args.trace_json is not None:
            _write_trace_json(recorder, args.trace_json)
    else:
        result = compute_reliability(net, demand=demand, method=args.method, **options)
    if args.json:
        payload = {
            "reliability": result.value,
            "method": result.method,
            "source": args.source,
            "sink": args.sink,
            "rate": args.rate,
        }
        if hasattr(result, "low"):
            payload["interval"] = [result.low, result.high]
        if hasattr(result, "flow_calls"):
            payload["flow_calls"] = result.flow_calls
        print(json.dumps(payload, indent=2))
    else:
        print(f"reliability = {result.value:.10f}  (method: {result.method})")
        if hasattr(result, "low"):
            print(f"{result.confidence:.0%} interval: [{result.low:.6f}, {result.high:.6f}]")
        elif result.flow_calls:
            print(f"max-flow calls: {result.flow_calls}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    # Same eager option validation as compute: fail before load().
    options = {}
    if args.method in ("montecarlo", "montecarlo-stratified"):
        options["num_samples"] = args.samples
    options.update(_workers_option(args))
    options.update(_incremental_option(args))
    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    recorder = Recorder(progress_callback=_print_progress if args.progress else None)
    with record(recorder):
        result = compute_reliability(net, demand=demand, method=args.method, **options)
    print(f"reliability = {result.value:.10f}  (method: {result.method})")
    if getattr(result, "flow_calls", 0):
        print(f"max-flow calls: {result.flow_calls}")
    print()
    print(format_tree(recorder, title=f"phases ({result.method})"))
    totals = recorder.counter_totals()
    if totals:
        print()
        print("counters:")
        for name in sorted(totals):
            value = totals[name]
            shown = f"{value:.6g}" if isinstance(value, float) else str(value)
            print(f"  {name} = {shown}")
    if args.trace_json is not None:
        _write_trace_json(recorder, args.trace_json)
    return 0


def _parse_grid(spec: str, option: str) -> list[float]:
    """Sweep grid syntax: ``start:stop:n`` (evenly spaced) or ``a,b,c``."""
    text = spec.strip()
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise ReproValueError(
                f"{option} grid must be 'start:stop:n', got {spec!r}"
            )
        try:
            start, stop, n = float(parts[0]), float(parts[1]), int(parts[2])
        except ValueError as exc:
            raise ReproValueError(f"cannot parse {option} grid {spec!r}") from exc
        if n < 1:
            raise ReproValueError(f"{option} grid needs n >= 1, got {n}")
        if n == 1:
            return [start]
        return [start + (stop - start) * i / (n - 1) for i in range(n)]
    try:
        values = [float(p) for p in text.split(",") if p.strip()]
    except ValueError as exc:
        raise ReproValueError(f"cannot parse {option} grid {spec!r}") from exc
    if not values:
        raise ReproValueError(f"{option} grid {spec!r} is empty")
    return values


def _parse_link_overrides(pairs: list[str]) -> dict[int, float]:
    """``--override LINK=P`` arguments into a failure-probability patch."""
    overrides: dict[int, float] = {}
    for pair in pairs:
        head, sep, tail = pair.partition("=")
        if not sep:
            raise ReproValueError(f"--override must be LINK=P, got {pair!r}")
        try:
            overrides[int(head)] = float(tail)
        except ValueError as exc:
            raise ReproValueError(f"--override must be LINK=P, got {pair!r}") from exc
    return overrides


def _cmd_sweep(args: argparse.Namespace) -> int:
    # Eager option validation before load(), like compute/profile.
    if args.workers is not None and args.workers < 1:
        raise ReproValueError(f"--workers must be >= 1, got {args.workers}")
    overrides = _parse_link_overrides(args.override)
    if args.availability is not None:
        spec = SweepSpec.availability(_parse_grid(args.availability, "--availability"))
    elif args.failure_scale is not None:
        spec = SweepSpec.failure_scale(
            _parse_grid(args.failure_scale, "--failure-scale")
        )
    else:
        try:
            rates = [int(r) for r in args.rates.split(",") if r.strip()]
        except ValueError as exc:
            raise ReproValueError(f"cannot parse --rates list {args.rates!r}") from exc
        spec = SweepSpec.demand_rates(rates)
    net = load(args.network)
    if overrides:
        net = net.with_failure_probabilities(overrides)
    demand = FlowDemand(args.source, args.sink, args.rate)
    cache = ArrayCache(args.cache_dir) if args.cache_dir is not None else None
    result = compute_reliability_sweep(
        net,
        demand,
        sweep=spec,
        workers=args.workers,
        incremental=args.incremental,
        cache=cache,
    )
    stats = result.cache_stats
    if args.json:
        payload = {
            "kind": result.kind,
            "source": args.source,
            "sink": args.sink,
            "rate": args.rate,
            "points": [
                {"x": x, "reliability": r.value}
                for x, r in zip(result.xs, result.results)
            ],
            "flow_calls": result.flow_calls,
            "cache": stats,
        }
        print(json.dumps(payload, indent=2))
    else:
        label = {
            "availability": "availability",
            "failure-scale": "scale",
            "demand": "rate",
        }[result.kind]
        print(f"{label:>14}  reliability")
        for x, r in zip(result.xs, result.results):
            shown = f"{x:.6g}" if isinstance(x, float) else str(x)
            print(f"{shown:>14}  {r.value:.10f}")
        print(f"max-flow calls: {result.flow_calls}")
        print(
            f"array cache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['bytes_read'] + stats['bytes_written']} bytes"
        )
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    low, high = reliability_bounds(net, demand)
    print(f"lower bound = {low:.10f}")
    print(f"upper bound = {high:.10f}")
    return 0


def _cmd_distribution(args: argparse.Namespace) -> int:
    net = load(args.network)
    dist = flow_value_distribution(net, args.source, args.sink)
    print("rate  P(maxflow == rate)  P(maxflow >= rate)")
    for v, p in enumerate(dist.pmf):
        print(f"{v:>4}  {p:>18.10f}  {dist.reliability(v):>18.10f}")
    print(f"expected deliverable rate: {dist.expected_value:.6f}")
    return 0


def _cmd_importance(args: argparse.Namespace) -> int:
    from repro.core.importance import link_importances

    net = load(args.network)
    demand = FlowDemand(args.source, args.sink, args.rate)
    table = link_importances(net, demand)
    ranked = sorted(table, key=lambda imp: -getattr(imp, args.measure))
    print("link  birnbaum    improvement  RAW         fussell-vesely")
    for imp in ranked:
        link = net.link(imp.link_index)
        print(
            f"e{imp.link_index:<4} {imp.birnbaum:<11.6f} "
            f"{imp.improvement_potential:<12.6f} {imp.risk_achievement_worth:<11.4f} "
            f"{imp.fussell_vesely:<11.6f}  ({link.tail!r} -> {link.head!r})"
        )
    return 0


def _cmd_sample_network(args: argparse.Namespace) -> int:
    net = _SAMPLES[args.kind]()
    text = network_to_json(net)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


#: Methods that accept a ``workers=`` option (``auto`` forwards it to
#: the bottleneck engine when that path wins).
_WORKERS_METHODS = ("naive-parallel", "bottleneck", "auto")


def _workers_option(args: argparse.Namespace) -> dict[str, int]:
    """Validate ``--workers`` and turn it into a compute option."""
    if args.workers is None:
        return {}
    if args.workers < 1:
        raise ReproValueError(f"--workers must be >= 1, got {args.workers}")
    if args.method not in _WORKERS_METHODS:
        raise ReproValueError(
            f"--workers is not supported by method {args.method!r}; "
            f"use one of: {', '.join(_WORKERS_METHODS)}"
        )
    return {"workers": args.workers}


#: Methods with a Gray-walk flow-repair path (``auto`` forwards the
#: toggle to whichever of them wins the dispatch).
_INCREMENTAL_METHODS = ("naive", "bottleneck", "auto")


def _incremental_option(args: argparse.Namespace) -> dict[str, bool]:
    """Validate ``--incremental``/``--no-incremental`` into an option."""
    if args.incremental is None:
        return {}
    flag = "--incremental" if args.incremental else "--no-incremental"
    if args.method not in _INCREMENTAL_METHODS:
        raise ReproValueError(
            f"{flag} is not supported by method {args.method!r}; "
            f"use one of: {', '.join(_INCREMENTAL_METHODS)}"
        )
    return {"incremental": args.incremental}


_COMMANDS = {
    "describe": _cmd_describe,
    "compute": _cmd_compute,
    "profile": _cmd_profile,
    "sweep": _cmd_sweep,
    "bounds": _cmd_bounds,
    "distribution": _cmd_distribution,
    "importance": _cmd_importance,
    "sample-network": _cmd_sample_network,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
