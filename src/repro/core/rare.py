"""Rare-event reliability estimation: permutation MC and splitting.

Crude Monte-Carlo (:mod:`repro.core.montecarlo`) needs ``~1/U`` samples
to see a single failure, so at per-link availability ``0.99999`` —
unreliability ``U ~ 1e-9``, the regime CDN-grade SLAs quote — it is
useless.  This module grows the estimator tier into that regime with
two variance-reduction methods whose relative error stays bounded as
``U -> 0``:

**Permutation / conditional Monte-Carlo** (the destruction-spectrum
estimator).  Sample a random *order* in which the links fail, walk the
kills through a warm :class:`~repro.flow.incremental.IncrementalMaxFlow`
residual until the demand first becomes infeasible (the *critical
number* ``B``), then integrate the failure probabilities out
analytically: conditioned on the order, the network is down exactly
when at least ``B`` links failed, so the sample contributes

``W = sum_{k >= B} C(m, k) * prod_{j < k} p_{pi(j)} * prod_{j >= k} (1 - p_{pi(j)})``

(the first ``k`` links of the order failed, the rest survived).  For a
uniform random permutation ``E[W]`` equals the unreliability *exactly*,
for heterogeneous link probabilities included; with equal link
probabilities ``W`` collapses to the Poisson-binomial failure tail
``P(#failed >= B)`` — the machinery of
:func:`repro.core.stratified.poisson_binomial`.  Randomness only enters
through the combinatorial order, so the estimator's variance is a
property of the topology, not of ``p``: the relative error is bounded
uniformly in the availability (Botev, L'Ecuyer & Tuffin 2016 extend
exactly this construction to flow demands; Karger's FPRAS supplies the
``epsilon``-approximation framing).

**Fixed-effort multilevel splitting** for demand-threshold events.
Embed the static model in the standard destruction process: link ``i``
fails by time ``t`` iff ``E_i < lambda_i * t`` with ``E_i ~ Exp(1)``
and ``lambda_i = -ln(1 - p_i)``, so ``t = 1`` reproduces the target
probabilities and *down at t* is monotone in ``t``.  The rare event
``{down at 1}`` is reached through a decreasing time ladder
``t_0 > t_1 > ... > 1``: at each level the surviving trajectories are
bootstrapped back to the fixed population size and *exactly* refreshed
from their conditional law given the level's failed set (truncated
exponentials — pure vectorized inverse-CDF, no MCMC), and the product
of the per-level conditional probabilities estimates ``U``.

Vectorization contract: all inner loops are array-at-a-time numpy —
permutation batches are drawn as ``argsort`` of exponential matrices of
shape ``(batch, m)``, spectrum conditioning and splitting refreshes are
batched, and scalar Python only touches the critical-point searches,
which ride the warm residual-repair path (one single-bit
:meth:`~repro.flow.incremental.IncrementalMaxFlow.goto` per kill).
Lint rule RR114 enforces the no-scalar-draws discipline on this module.

Replayability: every estimate derives its random streams from one root
:class:`numpy.random.SeedSequence` through *named* spawned children
(the hierarchical-seeding discipline of the nengo ``seed_network``
exemplar), records the root entropy in ``details["seed"]``, and uses a
deterministic batch schedule — same seed + inputs reproduce the value
and details bit-for-bit, which the property suite and the run-ledger
round-trip pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.montecarlo import z_quantile
from repro.core.result import EstimateResult
from repro.core.stratified import poisson_binomial, validate_probabilities
from repro.core.summation import KahanSum, fsum
from repro.exceptions import EstimationError
from repro.flow.base import MaxFlowSolver
from repro.flow.incremental import resolve_incremental
from repro.graph.network import FlowNetwork
from repro.obs.progress import progress_ticker
from repro.obs.recorder import (
    MC_SAMPLES,
    SAMPLES_VECTORIZED,
    SPECTRUM_SOLVES,
    count,
    span,
)
from repro.probability.bitset import pack_bitplanes

__all__ = [
    "DestructionSpectrum",
    "destruction_spectrum",
    "permutation_montecarlo_reliability",
    "rare_reliability",
    "sample_failure_orders",
    "spawn_streams",
    "splitting_reliability",
]

#: Named child streams spawned (in this order) from the root seed —
#: the stable vocabulary that makes every estimate bit-replayable.
STREAM_NAMES = (
    "spectrum.permutations",
    "split.population",
    "split.resample",
    "split.refresh",
)

#: Bitmask-packing width limit shared with the crude sampler.
_MAX_LINKS = 63

#: Minimum permutations drawn before the target-relative-error stopping
#: rule is consulted (a tiny pilot keeps the variance estimate honest).
_MIN_STOP_SAMPLES = 256


def spawn_streams(
    seed: int | np.random.SeedSequence | None,
) -> tuple[dict[str, np.random.Generator], int]:
    """Named, hierarchically seeded random streams for one estimate.

    One root :class:`~numpy.random.SeedSequence` spawns a child per
    :data:`STREAM_NAMES` entry, in that fixed order, so adding draws to
    one phase never perturbs another — the property that makes partial
    replays meaningful.  Returns the streams and the root entropy to
    record; ``spawn_streams(entropy)`` reproduces the streams exactly.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif seed is None:
        root = np.random.SeedSequence()
    else:
        root = np.random.SeedSequence(int(seed))
    children = root.spawn(len(STREAM_NAMES))
    streams = {
        name: np.random.default_rng(child)
        for name, child in zip(STREAM_NAMES, children)
    }
    entropy = root.entropy
    if not isinstance(entropy, int):  # pragma: no cover - entropy is int here
        raise EstimationError("seed entropy must be an integer for replay")
    return streams, entropy


def sample_failure_orders(
    num_links: int, batch: int, rng: np.random.Generator
) -> np.ndarray:
    """A batch of uniform random link-failure orders, shape ``(batch, m)``.

    Drawn array-at-a-time: one exponential matrix, one ``argsort`` —
    the classic construction (i.i.d. exponential clocks; sorting the
    clocks yields a uniform permutation of the links).
    """
    if num_links < 1:
        raise EstimationError("need at least one link to order")
    if batch < 1:
        raise EstimationError("batch must be positive")
    clocks = rng.standard_exponential((batch, num_links))
    return np.argsort(clocks, axis=1, kind="stable")


def _critical_numbers(
    oracle: FeasibilityOracle, orders: np.ndarray, full_mask: int
) -> tuple[np.ndarray, int]:
    """Critical number per failure order: the count of kills at which
    the demand first becomes infeasible (``m + 1`` = never).

    The only scalar loop of the estimator, and it rides the warm
    residual-repair path: consecutive queries differ in one link, so an
    incremental oracle repairs rather than re-solves; the jump back to
    the all-alive mask between orders is revive-only (free).
    """
    batch, m = orders.shape
    criticals = np.full(batch, m + 1, dtype=np.int64)
    queries = 0
    order_lists = orders.tolist()  # scalar loop: stay off numpy scalars
    for row, order in enumerate(order_lists):
        mask = full_mask
        for killed, link in enumerate(order, start=1):
            mask &= ~(1 << link)
            queries += 1
            if not oracle.feasible(mask):
                criticals[row] = killed
                break
    return criticals, queries


def _log_binomials(m: int) -> np.ndarray:
    """``log C(m, k)`` for ``k = 0..m`` from exact integer binomials."""
    return np.log(np.array([float(math.comb(m, k)) for k in range(m + 1)]))


def _spectrum_weights(
    orders: np.ndarray,
    criticals: np.ndarray,
    probs: np.ndarray,
    *,
    failure_tail: np.ndarray | None,
    log_binom: np.ndarray,
) -> np.ndarray:
    """Per-order conditional unreliability weights, vectorized.

    With a precomputed Poisson-binomial ``failure_tail`` (equal link
    probabilities) the weight is a table lookup ``P(#failed >= B)``;
    otherwise the general order-dependent product formula runs as
    batched log-space cumulative sums.  Links with ``p = 0`` or
    ``p = 1`` contribute ``-inf`` log terms that zero exactly the
    impossible prefixes — the formula stays correct without special
    cases.
    """
    m = orders.shape[1]
    if failure_tail is not None:
        return failure_tail[np.minimum(criticals, m + 1)]
    with np.errstate(divide="ignore"):
        log_p = np.log(probs)
        log_q = np.log1p(-probs)
    lp = log_p[orders]
    lq = log_q[orders]
    batch = orders.shape[0]
    prefix = np.zeros((batch, m + 1))
    prefix[:, 1:] = np.cumsum(lp, axis=1)
    suffix = np.zeros((batch, m + 1))
    suffix[:, :-1] = np.cumsum(lq[:, ::-1], axis=1)[:, ::-1]
    log_terms = log_binom[None, :] + prefix + suffix
    terms = np.exp(log_terms)
    include = np.arange(m + 1)[None, :] >= criticals[:, None]
    return np.sum(np.where(include, terms, 0.0), axis=1)


def _failure_tail(probs: np.ndarray) -> np.ndarray | None:
    """``tail[b] = P(#failed >= b)`` via the Poisson-binomial DP, or
    ``None`` when the links are not identically distributed.

    ``tail`` has ``m + 2`` entries so the ``B = m + 1`` (never fails)
    sentinel indexes an exact zero.
    """
    if probs.size == 0 or not bool(np.all(probs == probs[0])):
        return None
    alive_dist = poisson_binomial(probs)
    m = probs.size
    # P(#failed >= b) = P(#alive <= m - b); cumulative over the alive DP.
    alive_cdf = np.cumsum(alive_dist)
    tail = np.zeros(m + 2)
    tail[: m + 1] = alive_cdf[::-1]
    return tail


@dataclass(frozen=True)
class DestructionSpectrum:
    """The sampled destruction spectrum of one (network, demand) pair.

    ``counts[b]`` is the number of sampled failure orders whose critical
    number was ``b`` (index ``m + 1`` = the demand stayed feasible with
    every link dead, possible only for degenerate demands).
    """

    counts: np.ndarray
    num_permutations: int
    queries: int
    flow_calls: int

    def pmf(self) -> np.ndarray:
        """Empirical spectrum ``f(b) = P(B = b)``; sums to 1."""
        return self.counts / float(self.num_permutations)

    def cdf(self) -> np.ndarray:
        """Empirical cumulative spectrum ``G(b) = P(B <= b)``."""
        return np.cumsum(self.pmf())


def destruction_spectrum(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    num_permutations: int = 1000,
    seed: int | np.random.SeedSequence | None = 0,
    solver: str | MaxFlowSolver | None = None,
    incremental: bool | None = None,
    batch_size: int = 2048,
) -> DestructionSpectrum:
    """Sample the destruction spectrum (critical-number distribution).

    The combinatorial half of the permutation estimator, exposed for
    inspection and tests; probabilities never enter, so one spectrum
    serves every availability point of the same topology.
    """
    demand.validate_against(net)
    m = net.num_links
    _require_estimable(m, num_permutations, batch_size)
    streams, _ = spawn_streams(seed)
    rng = streams["spectrum.permutations"]
    oracle = _make_oracle(net, demand, solver, incremental)
    full_mask = (1 << m) - 1
    counts = np.zeros(m + 2, dtype=np.int64)
    queries = 0
    drawn = 0
    with span("rare.spectrum", permutations=num_permutations, batch_size=batch_size):
        while drawn < num_permutations:
            batch = min(batch_size, num_permutations - drawn)
            orders = sample_failure_orders(m, batch, rng)
            count(SAMPLES_VECTORIZED, batch)
            criticals, batch_queries = _critical_numbers(oracle, orders, full_mask)
            counts += np.bincount(criticals, minlength=m + 2)
            queries += batch_queries
            drawn += batch
        count(SPECTRUM_SOLVES, queries)
        count(MC_SAMPLES, drawn)
    return DestructionSpectrum(
        counts=counts,
        num_permutations=num_permutations,
        queries=queries,
        flow_calls=oracle.calls,
    )


def _require_estimable(m: int, num_samples: int, batch_size: int) -> None:
    if m < 1:
        raise EstimationError("network has no links to fail")
    if m > _MAX_LINKS:
        raise EstimationError(
            f"rare-event estimation supports at most {_MAX_LINKS} links, got {m}"
        )
    if num_samples < 1:
        raise EstimationError("sample budget must be positive")
    if batch_size < 1:
        raise EstimationError("batch_size must be positive")


def _make_oracle(
    net: FlowNetwork,
    demand: FlowDemand,
    solver: str | MaxFlowSolver | None,
    incremental: bool | None,
) -> FeasibilityOracle:
    warm = resolve_incremental(solver, incremental)
    return FeasibilityOracle(
        net, demand.source, demand.sink, demand.rate, solver=solver, incremental=warm
    )


def permutation_montecarlo_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    num_samples: int = 10_000,
    target_relative_error: float | None = None,
    confidence: float = 0.95,
    seed: int | np.random.SeedSequence | None = 0,
    solver: str | MaxFlowSolver | None = None,
    incremental: bool | None = None,
    batch_size: int = 2048,
) -> EstimateResult:
    """Permutation/conditional Monte-Carlo estimate of the reliability.

    ``num_samples`` is the permutation budget; with
    ``target_relative_error`` set, sampling stops at the end of the
    first batch whose estimated relative error (at ``confidence``) on
    the *unreliability* meets the target, budget permitting.  The
    estimate is unbiased for heterogeneous link probabilities and its
    relative error is bounded in the availability — the five-nines
    workhorse.  Deterministic per seed: the batch schedule, stream
    derivation and compensated accumulation order are all fixed.
    """
    demand.validate_against(net)
    m = net.num_links
    _require_estimable(m, num_samples, batch_size)
    if target_relative_error is not None and not target_relative_error > 0.0:
        raise EstimationError("target_relative_error must be positive")
    z = z_quantile(confidence)
    probs = validate_probabilities(net.failure_probabilities())
    streams, entropy = spawn_streams(seed)
    rng = streams["spectrum.permutations"]
    oracle = _make_oracle(net, demand, solver, incremental)
    full_mask = (1 << m) - 1

    if not oracle.feasible(full_mask):
        # The all-alive network already misses the demand: reliability
        # is exactly 0, no sampling needed.
        return EstimateResult(
            value=0.0,
            low=0.0,
            high=0.0,
            confidence=confidence,
            num_samples=0,
            hits=0,
            method="rare-permutation",
            details={
                "variant": "permutation",
                "unreliability": 1.0,
                "degenerate": "infeasible-at-full-capacity",
                "flow_calls": oracle.calls,
                "seed": entropy,
                "streams": list(STREAM_NAMES),
            },
        )

    failure_tail = _failure_tail(probs)
    log_binom = _log_binomials(m)
    weight_sum = KahanSum()
    weight_sq_sum = KahanSum()
    counts = np.zeros(m + 2, dtype=np.int64)
    queries = 0
    drawn = 0
    batches = 0
    stopped_early = False
    with span("rare.spectrum", permutations=num_samples, batch_size=batch_size):
        with progress_ticker("rare.permutations", total=num_samples) as ticker:
            while drawn < num_samples:
                batch = min(batch_size, num_samples - drawn)
                orders = sample_failure_orders(m, batch, rng)
                count(SAMPLES_VECTORIZED, batch)
                criticals, batch_queries = _critical_numbers(
                    oracle, orders, full_mask
                )
                weights = _spectrum_weights(
                    orders,
                    criticals,
                    probs,
                    failure_tail=failure_tail,
                    log_binom=log_binom,
                )
                weight_sum.add(fsum(weights.tolist()))
                weight_sq_sum.add(fsum((weights * weights).tolist()))
                counts += np.bincount(criticals, minlength=m + 2)
                queries += batch_queries
                drawn += batch
                batches += 1
                ticker.tick(batch)
                if (
                    target_relative_error is not None
                    and drawn >= _MIN_STOP_SAMPLES
                    and _relative_error(weight_sum, weight_sq_sum, drawn, z)
                    <= target_relative_error
                ):
                    stopped_early = True
                    break
        count(SPECTRUM_SOLVES, queries)
        count(MC_SAMPLES, drawn)

    unreliability = weight_sum.value / drawn
    std_error = _std_error(weight_sum, weight_sq_sum, drawn)
    relative_error = (
        z * std_error / unreliability if unreliability > 0.0 else math.inf
    )
    low_u = max(0.0, unreliability - z * std_error)
    high_u = min(1.0, unreliability + z * std_error)
    value = min(1.0, max(0.0, 1.0 - unreliability))
    observed = counts[: m + 2][counts > 0]
    nonzero = np.nonzero(counts)[0]
    return EstimateResult(
        value=value,
        low=min(1.0, max(0.0, 1.0 - high_u)),
        high=min(1.0, max(0.0, 1.0 - low_u)),
        confidence=confidence,
        num_samples=drawn,
        hits=int(round(value * drawn)),
        method="rare-permutation",
        details={
            "variant": "permutation",
            "unreliability": float(unreliability),
            "unreliability_low": float(low_u),
            "unreliability_high": float(high_u),
            "std_error": float(std_error),
            "relative_error": float(relative_error),
            "spectrum_counts": counts.tolist(),
            "critical_min": int(nonzero[0]) if observed.size else 0,
            "critical_max": int(nonzero[-1]) if observed.size else 0,
            "homogeneous": failure_tail is not None,
            "spectrum_solves": queries,
            "flow_calls": oracle.calls,
            "batches": batches,
            "stopped_early": stopped_early,
            "target_relative_error": target_relative_error,
            "seed": entropy,
            "streams": list(STREAM_NAMES),
        },
    )


def _std_error(total: KahanSum, total_sq: KahanSum, n: int) -> float:
    if n < 2:
        return math.inf
    mean = total.value / n
    variance = max(0.0, (total_sq.value - n * mean * mean) / (n - 1))
    return math.sqrt(variance / n)


def _relative_error(total: KahanSum, total_sq: KahanSum, n: int, z: float) -> float:
    mean = total.value / n
    if mean <= 0.0:
        return math.inf
    return z * _std_error(total, total_sq, n) / mean


def _failure_rates(probs: np.ndarray) -> np.ndarray:
    """Exponential-clock rates ``lambda_i = -ln(1 - p_i)``.

    ``p = 0`` maps to rate 0 (never fails), ``p = 1`` to ``inf``
    (failed at any positive time) — both flow through the comparisons
    below without special cases.
    """
    with np.errstate(divide="ignore"):
        return -np.log1p(-probs)


def _initial_time(rates: np.ndarray, probs: np.ndarray) -> float:
    """The easy end of the time ladder: the smallest ``t`` at which the
    mean link-failure probability reaches ~0.5 (capped to the
    achievable limit when some links never fail)."""
    finite = np.isfinite(rates)
    limit = float(np.mean(np.where(probs > 0.0, 1.0, 0.0)))
    target = min(0.5, 0.95 * limit) if limit > 0.0 else 0.0
    if target <= 0.0:
        return 1.0

    def mean_failure(t: float) -> float:
        with np.errstate(over="ignore"):
            q = -np.expm1(-np.where(finite, rates, np.inf) * t)
        return float(np.mean(np.where(probs > 0.0, q, 0.0)))

    if mean_failure(1.0) >= target:
        return 1.0
    lo, hi = 1.0, 2.0
    while mean_failure(hi) < target and hi < 1e15:
        lo, hi = hi, hi * 2.0
    for _ in range(80):
        mid = math.sqrt(lo * hi)
        if mean_failure(mid) >= target:
            hi = mid
        else:
            lo = mid
    return hi


def _level_schedule(t_initial: float, num_levels: int | None) -> list[float]:
    """Geometric time ladder ``t_0 > ... > t_L = 1`` (log-uniform)."""
    if t_initial <= 1.0:
        return [1.0]
    if num_levels is None:
        # One e-fold of time per level: with a min-cut of c links the
        # per-level conditional probability lands near exp(-c), deep
        # enough to make progress and shallow enough to keep survivors.
        num_levels = max(1, math.ceil(math.log(t_initial)))
    if num_levels < 1:
        raise EstimationError("num_levels must be positive")
    exponents = np.linspace(1.0, 0.0, num_levels + 1)
    return [float(t_initial**e) for e in exponents]


def splitting_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    num_samples: int = 1000,
    num_levels: int | None = None,
    confidence: float = 0.95,
    seed: int | np.random.SeedSequence | None = 0,
    solver: str | MaxFlowSolver | None = None,
    incremental: bool | None = None,
) -> EstimateResult:
    """Fixed-effort multilevel splitting estimate of the reliability.

    ``num_samples`` is the per-level population size.  Trajectories are
    exponential-clock matrices; each level conditions on "down at
    ``t_k``", bootstraps the survivors back to the population size and
    refreshes every clock exactly from its truncated conditional
    distribution (vectorized inverse CDF — no MCMC, no scalar draws).
    Feasibility work per level is one solve per *distinct* failed mask
    (masks dedup through ``np.unique`` and a cross-level verdict
    cache).  The product of per-level conditional probabilities
    estimates the unreliability; the interval is a delta-method
    log-normal interval treating levels as independent (slightly
    optimistic, as is standard for fixed-effort splitting).
    """
    demand.validate_against(net)
    m = net.num_links
    _require_estimable(m, num_samples, num_samples)
    z = z_quantile(confidence)
    probs = validate_probabilities(net.failure_probabilities())
    streams, entropy = spawn_streams(seed)
    oracle = _make_oracle(net, demand, solver, incremental)
    rates = _failure_rates(probs)
    t_initial = _initial_time(rates, probs)
    schedule = _level_schedule(t_initial, num_levels)
    population = num_samples

    verdicts: dict[int, bool] = {}

    def down_fractions(clocks: np.ndarray, t: float) -> tuple[np.ndarray, int]:
        """Down indicator per trajectory at time ``t`` + distinct solves."""
        failed = clocks < rates[None, :] * t
        alive_masks = pack_bitplanes(~failed)
        distinct, inverse = np.unique(alive_masks, return_inverse=True)
        distinct_down = np.empty(distinct.shape[0], dtype=bool)
        solved = 0
        for idx, alive_np in enumerate(distinct):
            alive = int(alive_np)
            verdict = verdicts.get(alive)
            if verdict is None:
                verdict = not oracle.feasible(alive)
                verdicts[alive] = verdict
                solved += 1
            distinct_down[idx] = verdict
        return distinct_down[inverse], solved

    levels: list[dict[str, Any]] = []
    log_variance = 0.0
    unreliability = 1.0
    starved_level: int | None = None
    with span("rare.split", levels=len(schedule), population=population):
        clocks = streams["split.population"].standard_exponential((population, m))
        count(SAMPLES_VECTORIZED, population)
        count(MC_SAMPLES, population * len(schedule))
        previous_t: float | None = None
        for index, t in enumerate(schedule):
            if previous_t is not None:
                resample = streams["split.resample"]
                refresh = streams["split.refresh"]
                picks = resample.integers(0, clocks.shape[0], size=population)
                base = clocks[picks]
                failed_before = base < rates[None, :] * previous_t
                uniforms = refresh.random((population, m))
                ceiling = rates * previous_t
                with np.errstate(over="ignore", invalid="ignore"):
                    below = -np.log1p(-uniforms * (-np.expm1(-ceiling)))
                    above = ceiling - np.log1p(-uniforms)
                clocks = np.where(failed_before, below, above)
                count(SAMPLES_VECTORIZED, population)
            down, solved = down_fractions(clocks, t)
            survivors = int(np.count_nonzero(down))
            conditional = survivors / float(clocks.shape[0])
            levels.append(
                {
                    "t": float(t),
                    "conditional": conditional,
                    "survivors": survivors,
                    "distinct_solves": solved,
                }
            )
            unreliability *= conditional
            if survivors == 0:
                starved_level = index
                break
            log_variance += (1.0 - conditional) / (population * conditional)
            clocks = clocks[down]
            previous_t = t

    sigma = math.sqrt(log_variance)
    if unreliability > 0.0:
        low_u = unreliability * math.exp(-z * sigma)
        high_u = min(1.0, unreliability * math.exp(z * sigma))
    else:
        low_u = 0.0
        high_u = 1.0  # a starved run bounds nothing from above
    total_samples = population * len(levels)
    value = min(1.0, max(0.0, 1.0 - unreliability))
    details: dict[str, Any] = {
        "variant": "splitting",
        "unreliability": float(unreliability),
        "unreliability_low": float(low_u),
        "unreliability_high": float(high_u),
        "relative_error": float(z * sigma) if unreliability > 0.0 else math.inf,
        "levels": levels,
        "t_initial": float(t_initial),
        "population": population,
        "distinct_configurations": len(verdicts),
        "flow_calls": oracle.calls,
        "seed": entropy,
        "streams": list(STREAM_NAMES),
    }
    if starved_level is not None:
        details["starved_level"] = starved_level
    return EstimateResult(
        value=value,
        low=min(1.0, max(0.0, 1.0 - high_u)),
        high=min(1.0, max(0.0, 1.0 - low_u)),
        confidence=confidence,
        num_samples=total_samples,
        hits=int(round(value * total_samples)),
        method="rare-splitting",
        details=details,
    )


def rare_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    variant: str = "auto",
    num_samples: int | None = None,
    target_relative_error: float | None = None,
    confidence: float = 0.95,
    seed: int | np.random.SeedSequence | None = 0,
    solver: str | MaxFlowSolver | None = None,
    incremental: bool | None = None,
    batch_size: int = 2048,
    num_levels: int | None = None,
) -> EstimateResult:
    """Front door of the rare-event tier (``method="rare"``).

    ``variant`` selects the estimator: ``"permutation"`` (alias
    ``"spectrum"``) for the destruction-spectrum conditional MC,
    ``"splitting"`` for fixed-effort multilevel splitting, ``"auto"``
    for permutation — the bounded-relative-error default.
    """
    resolved = {"auto": "permutation", "spectrum": "permutation"}.get(variant, variant)
    if resolved == "permutation":
        return permutation_montecarlo_reliability(
            net,
            demand,
            num_samples=10_000 if num_samples is None else num_samples,
            target_relative_error=target_relative_error,
            confidence=confidence,
            seed=seed,
            solver=solver,
            incremental=incremental,
            batch_size=batch_size,
        )
    if resolved == "splitting":
        if target_relative_error is not None:
            raise EstimationError(
                "target_relative_error is a permutation-variant option; "
                "splitting uses a fixed per-level population"
            )
        return splitting_reliability(
            net,
            demand,
            num_samples=1000 if num_samples is None else num_samples,
            num_levels=num_levels,
            confidence=confidence,
            seed=seed,
            solver=solver,
            incremental=incremental,
        )
    raise EstimationError(
        f"unknown rare-event variant {variant!r}; "
        "choose auto, permutation, spectrum or splitting"
    )
