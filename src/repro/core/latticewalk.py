"""The shared Gray-code lattice walk with two-sided monotone pruning.

All three enumeration kernels (:mod:`repro.core.naive`, the serial
:mod:`repro.core.arrays` builder and the chunked
:mod:`repro.core.engine` workers) answer the same shape of question: a
monotone boolean per mask of a ``2^m`` lattice, where evaluating a mask
costs a max-flow solve.  Walking the lattice in Gray-code order
(:func:`repro.probability.gray_lattice`) makes consecutive masks differ
in one link, which is what lets an incremental engine repair the
previous flow instead of cold-solving — and it unlocks a *two-sided*
prune the cold popcount-order scans cannot use:

* a **visited** infeasible one-bit superset dooms the mask
  (monotonicity downward), and
* a **visited** feasible one-bit subset blesses it (monotonicity
  upward — the popcount order only ever exploits the doom half).

Only visited neighbours are consulted, so the filled table is exact for
any visiting order; the walk order changes nothing but the solve count.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.probability.bitset import gray_lattice, popcount_array
from repro.probability.enumeration import check_enumerable

__all__ = ["gray_walk_table", "popcount_descending_order"]


def popcount_descending_order(n_bits: int) -> np.ndarray:
    """Every mask of the ``2^n_bits`` lattice, most-alive first.

    The visiting order that makes the *doom* half of monotone pruning
    complete: every immediate superset of a mask precedes it, so an
    unrealized superset settles the mask without a solve.  Stable within
    a popcount level (ascending numeric order), which is what keeps the
    cold scans and the block kernel enumerating identically.
    """
    counts = popcount_array(n_bits)
    return np.argsort(-counts.astype(np.int16), kind="stable")


def gray_walk_table(
    column: np.ndarray,
    m: int,
    decide: Callable[[int], bool],
    *,
    order: Sequence[int] | None = None,
    prune: bool = True,
    tick: Callable[[], None] | None = None,
) -> None:
    """Fill a monotone boolean ``column`` over the ``2^m`` lattice in place.

    ``decide(mask)`` is called for every mask the pruning cannot settle
    (in Gray order, so consecutive calls differ in one link — feed them
    to an incremental engine).  ``order`` permutes walk positions to
    bits as in :func:`repro.probability.gray_lattice`; ``tick`` is an
    optional per-mask progress callback.
    """
    check_enumerable(m)
    size = 1 << m
    visited = np.zeros(size, dtype=bool) if prune else None
    for mask in gray_lattice(m, order):
        if tick is not None:
            tick()
        decided = False
        if prune:
            bits = ~mask & (size - 1)
            while bits:
                low = bits & -bits
                sup = mask | low
                if visited[sup] and not column[sup]:
                    decided = True  # infeasible superset -> infeasible
                    break
                bits ^= low
            if not decided:
                bits = mask
                while bits:
                    low = bits & -bits
                    sub = mask ^ low
                    if visited[sub] and column[sub]:
                        column[mask] = True  # feasible subset -> feasible
                        decided = True
                        break
                    bits ^= low
        if not decided:
            column[mask] = decide(mask)
        if prune:
            visited[mask] = True
