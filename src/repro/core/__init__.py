"""The paper's algorithms: naive, bridge, bottleneck, chain, factoring,
Monte-Carlo and bounds, plus the dispatching :func:`compute_reliability`."""

from repro.core.accumulate import accumulate, restrict_masks, side_class_probabilities
from repro.core.api import available_methods, compute_reliability
from repro.core.arrays import RealizationArray, build_side_array
from repro.core.bitplane import (
    DEFAULT_BLOCK_BITS,
    BlockStats,
    blocked_side_masks,
    build_side_array_blocked,
    resolve_block_bits,
)
from repro.core.assignments import (
    classify_by_support,
    count_assignments,
    describe_assignment,
    enumerate_assignments,
    iter_support_classes,
    support_mask,
    supported_assignment_indices,
    supports,
)
from repro.core.bottleneck import bottleneck_reliability, pattern_probability
from repro.core.bounds import cut_upper_bound, reliability_bounds, route_lower_bound
from repro.core.bridge import bridge_reliability
from repro.core.chain import ChainStructure, analyze_chain, chain_reliability
from repro.core.demand import FlowDemand
from repro.core.engine import (
    LatticePlan,
    RealizationScreens,
    build_realization_arrays,
    build_side_array_parallel,
    partition_lattice,
    run_chunked,
)
from repro.core.factoring import factoring_reliability
from repro.core.feasibility import FeasibilityOracle
from repro.core.frontier import (
    bfs_link_order,
    directed_frontier_reliability,
    frontier_reliability,
    frontier_width,
)
from repro.core.distribution import (
    FlowValueDistribution,
    flow_value_distribution,
    sampled_flow_value_distribution,
)
from repro.core.importance import (
    LinkImportance,
    link_importances,
    most_important_link,
)
from repro.core.montecarlo import montecarlo_reliability, wilson_interval, z_quantile
from repro.core.multisink import (
    CoverageReport,
    broadcast_reliability,
    coverage_curve,
    coverage_distribution,
)
from repro.core.naive import feasibility_table, naive_reliability
from repro.core.parallel import default_workers, parallel_naive_reliability
from repro.core.paths import minimal_paths, minpath_reliability
from repro.core.polynomial import ReliabilityPolynomial, reliability_polynomial
from repro.core.transient import LinkDynamics, availability_at, reliability_over_time
from repro.core.reductions import (
    ReductionReport,
    reduce_for_unit_demand,
    series_parallel_reliability,
)
from repro.core.rare import (
    DestructionSpectrum,
    destruction_spectrum,
    permutation_montecarlo_reliability,
    rare_reliability,
    splitting_reliability,
)
from repro.core.result import EstimateResult, ReliabilityResult
from repro.core.shard import plan_columns, sharded_sweep
from repro.core.stratified import (
    poisson_binomial,
    poisson_binomial_suffix,
    sample_with_alive_count,
    stratified_montecarlo_reliability,
    validate_probabilities,
)
from repro.core.sweep import (
    ArrayCache,
    SweepResult,
    SweepSpec,
    cached_side_array,
    compute_reliability_sweep,
)

__all__ = [
    "FlowDemand",
    "ReliabilityResult",
    "EstimateResult",
    "FeasibilityOracle",
    "compute_reliability",
    "available_methods",
    "naive_reliability",
    "feasibility_table",
    "bridge_reliability",
    "bottleneck_reliability",
    "pattern_probability",
    "chain_reliability",
    "analyze_chain",
    "ChainStructure",
    "factoring_reliability",
    "montecarlo_reliability",
    "wilson_interval",
    "z_quantile",
    "DestructionSpectrum",
    "destruction_spectrum",
    "permutation_montecarlo_reliability",
    "rare_reliability",
    "splitting_reliability",
    "cut_upper_bound",
    "route_lower_bound",
    "reliability_bounds",
    "enumerate_assignments",
    "count_assignments",
    "support_mask",
    "supports",
    "supported_assignment_indices",
    "classify_by_support",
    "iter_support_classes",
    "describe_assignment",
    "RealizationArray",
    "build_side_array",
    "DEFAULT_BLOCK_BITS",
    "BlockStats",
    "blocked_side_masks",
    "build_side_array_blocked",
    "resolve_block_bits",
    "LatticePlan",
    "RealizationScreens",
    "build_realization_arrays",
    "build_side_array_parallel",
    "partition_lattice",
    "run_chunked",
    "accumulate",
    "restrict_masks",
    "side_class_probabilities",
    "ArrayCache",
    "SweepSpec",
    "SweepResult",
    "cached_side_array",
    "compute_reliability_sweep",
    "plan_columns",
    "sharded_sweep",
    # extensions
    "FlowValueDistribution",
    "flow_value_distribution",
    "sampled_flow_value_distribution",
    "CoverageReport",
    "broadcast_reliability",
    "coverage_curve",
    "coverage_distribution",
    "default_workers",
    "parallel_naive_reliability",
    "ReductionReport",
    "reduce_for_unit_demand",
    "series_parallel_reliability",
    "poisson_binomial",
    "poisson_binomial_suffix",
    "sample_with_alive_count",
    "stratified_montecarlo_reliability",
    "validate_probabilities",
    "frontier_reliability",
    "directed_frontier_reliability",
    "LinkImportance",
    "link_importances",
    "most_important_link",
    "minimal_paths",
    "minpath_reliability",
    "ReliabilityPolynomial",
    "reliability_polynomial",
    "LinkDynamics",
    "availability_at",
    "reliability_over_time",
    "bfs_link_order",
    "frontier_width",
]
