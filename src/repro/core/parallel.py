"""Process-parallel naive enumeration.

The naive algorithm is embarrassingly parallel: the ``2^|E|``
configuration space partitions into contiguous index ranges, each
worker builds its own :class:`~repro.core.feasibility.FeasibilityOracle`
(the residual template is cheap) and sums the probability of the
feasible configurations in its range, and the partial sums add up.

The split is by the **high bits** of the configuration mask, so every
worker handles one subtree of the configuration lattice; monotone
pruning works within a worker's own high-bit pattern (the low-bit
lattice is complete inside each chunk).

This is the classic HPC decomposition (owner-computes over a static
block partition — the multiprocessing analogue of the mpi4py pattern
in the domain guides); speedup is near-linear once per-configuration
work dominates the fork overhead, which the X2 benchmark measures.
"""

from __future__ import annotations

import numpy as np

from repro.core.demand import FlowDemand
from repro.core.engine import default_workers, partition_lattice, run_chunked
from repro.core.feasibility import FeasibilityOracle
from repro.core.naive import MAX_NAIVE_BITS
from repro.core.result import ReliabilityResult
from repro.core.summation import KahanSum, prob_fsum
from repro.exceptions import EstimationError
from repro.graph.io import from_dict, to_dict
from repro.graph.network import FlowNetwork
from repro.obs.recorder import FLOW_SOLVES, count, span, wallclock
from repro.obs.telemetry import current_spool_dir, spool_chunk_events
from repro.probability.bitset import popcount_array
from repro.probability.enumeration import check_enumerable, configuration_probabilities

__all__ = ["parallel_naive_reliability", "default_workers"]


def _worker_sum(
    net_data: dict,
    source,
    sink,
    rate: int,
    low_bits: int,
    high_pattern: int,
    prune: bool,
    spool_dir: str | None = None,
) -> tuple[float, int]:
    """Sum feasible-configuration probability over one high-bit chunk.

    Runs in a separate process; receives the network as a plain dict
    (cheap, avoids pickling library objects across versions).  When a
    telemetry session is open, the chunk's solve count is spooled as a
    ``parallel.chunk`` worker stream before returning.
    """
    start = wallclock()
    net = from_dict(net_data)
    oracle = FeasibilityOracle(net, source, sink, rate)
    probabilities = configuration_probabilities(net)
    check_enumerable(low_bits, limit=MAX_NAIVE_BITS)
    size = 1 << low_bits
    base = high_pattern << low_bits
    total = KahanSum()
    if not prune:
        for low in range(size):  # repro: noqa[RR109] cold ablation path of the chunk worker, kept byte-identical
            if oracle.feasible(base | low):
                total.add(float(probabilities[base | low]))
        _spool_parallel_chunk(spool_dir, high_pattern, wallclock() - start, oracle.calls)
        return total.value, oracle.calls

    counts = popcount_array(low_bits)
    order = np.argsort(-counts.astype(np.int16), kind="stable")
    feasible = np.zeros(size, dtype=bool)
    for low_np in order:
        low = int(low_np)
        doomed = False
        bits = ~low & (size - 1)
        while bits:
            lowest = bits & -bits
            if not feasible[low | lowest]:
                doomed = True
                break
            bits ^= lowest
        if doomed:
            continue
        if oracle.feasible(base | low):
            feasible[low] = True
            total.add(float(probabilities[base | low]))
    _spool_parallel_chunk(spool_dir, high_pattern, wallclock() - start, oracle.calls)
    return total.value, oracle.calls


def _spool_parallel_chunk(
    spool_dir: str | None, chunk: int, seconds: float, calls: int
) -> None:
    """Write one chunk's solve count as a worker telemetry stream.

    The counters here are exactly what the parent replays onto its
    ``parallel.chunk`` span for pooled chunks — and exactly what the
    in-process oracle already counted live for unpooled ones — so the
    merged worker totals always equal the recorded totals.
    """
    if spool_dir:
        spool_chunk_events(
            spool_dir,
            "parallel.chunk",
            attrs={"chunk": chunk},
            seconds=seconds,
            counters={FLOW_SOLVES: calls},
        )


def parallel_naive_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    workers: int | None = None,
    prune: bool = True,
) -> ReliabilityResult:
    """Exact naive reliability computed across a process pool.

    Identical value to :func:`repro.core.naive.naive_reliability`
    (a test pins it).  The chunk count is the smallest power of two
    >= ``workers``; each chunk fixes that many high bits of the
    configuration mask.

    Note: within-chunk pruning sees only same-chunk supersets, so the
    total max-flow call count is somewhat higher than the serial
    pruned scan — the price of independence between workers.
    """
    demand.validate_against(net)
    m = net.num_links
    check_enumerable(m, limit=MAX_NAIVE_BITS)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise EstimationError("workers must be >= 1")

    plan = partition_lattice(m, workers)
    net_data = to_dict(net)
    spool = current_spool_dir()
    args = [
        (
            net_data,
            demand.source,
            demand.sink,
            demand.rate,
            plan.low_bits,
            pattern,
            prune,
            str(spool) if spool is not None else None,
        )
        for pattern in range(plan.chunks)
    ]
    pooled = workers > 1 and len(args) > 1
    results = run_chunked(_worker_sum, args, workers=workers)
    if pooled:
        # Pooled chunks solved in processes where the recorder contextvar
        # is invisible, so their oracle counts never reached the trace —
        # replay them here, one span per chunk, exactly as the
        # realization-array engine does.  Unpooled chunks already counted
        # live through the in-process FeasibilityOracle; replaying those
        # too would double-count.
        for pattern, result in enumerate(results):
            with span("parallel.chunk", chunk=pattern):
                count(FLOW_SOLVES, int(result[1]))
    value = prob_fsum(r[0] for r in results)
    calls = int(sum(r[1] for r in results))
    return ReliabilityResult(
        value=value,
        method="naive-parallel",
        flow_calls=calls,
        configurations=1 << m,
        details={"workers": workers, "chunks": plan.chunks, "pruned": bool(prune)},
    )
