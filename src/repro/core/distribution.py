"""The full distribution of the deliverable rate.

Reliability is the tail probability ``P(maxflow >= d)`` of the random
variable *max-flow of the surviving subgraph*.  This module computes
that variable's entire probability mass function (and hence every
reliability value at once, plus the expected deliverable bit-rate) —
the natural generalization a streaming operator actually wants:
"what rate can I promise at 99%?".

``flow_value_distribution`` enumerates configurations exactly (with a
monotone-aware scan: the max-flow value is monotone in the alive set,
which bounds each subset's value by its supersets' minimum and lets
whole branches collapse); ``sampled_flow_value_distribution`` is the
Monte-Carlo counterpart for larger networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.summation import prob_fsum
from repro.exceptions import EstimationError
from repro.flow.base import MaxFlowSolver
from repro.graph.generators import as_rng
from repro.graph.network import FlowNetwork, Node
from repro.probability.bitset import popcount_array
from repro.probability.enumeration import check_enumerable, configuration_probabilities
from repro.probability.sampling import sample_alive_masks

__all__ = [
    "FlowValueDistribution",
    "flow_value_distribution",
    "sampled_flow_value_distribution",
]


@dataclass(frozen=True)
class FlowValueDistribution:
    """PMF of the surviving max-flow value.

    ``pmf[v]`` is ``P(maxflow == v)`` for ``v = 0 .. len(pmf) - 1``.
    """

    pmf: tuple[float, ...]
    exact: bool
    flow_calls: int

    def reliability(self, demand: int) -> float:
        """``P(maxflow >= demand)`` — the paper's quantity, any ``d``."""
        if demand <= 0:
            return 1.0
        return prob_fsum(self.pmf[demand:])

    @property
    def expected_value(self) -> float:
        """Expected deliverable bit-rate ``E[maxflow]``."""
        return prob_fsum(v * p for v, p in enumerate(self.pmf))

    def quantile_rate(self, confidence: float) -> int:
        """The largest rate deliverable with probability >= ``confidence``.

        The operator's question: "what bit-rate can I promise at 99%?"
        Returns 0 when even rate 1 misses the target.
        """
        if not 0.0 < confidence <= 1.0:
            raise EstimationError("confidence must be in (0, 1]")
        rate = 0
        for v in range(1, len(self.pmf)):
            if self.reliability(v) >= confidence:
                rate = v
            else:
                break
        return rate

    def __len__(self) -> int:
        return len(self.pmf)


def flow_value_distribution(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    solver: str | MaxFlowSolver | None = None,
) -> FlowValueDistribution:
    """Exact PMF of the surviving max-flow value.

    Enumerates all ``2^|E|`` configurations, scanning by decreasing
    popcount; each configuration's value is capped by the minimum over
    its one-link supersets (monotonicity), so the per-configuration
    solve can stop at that cap — and is skipped entirely when the cap
    is 0.
    """
    m = net.num_links
    check_enumerable(m, limit=22)
    oracle = FeasibilityOracle(net, source, sink, 0, solver=solver)
    size = 1 << m
    values = np.zeros(size, dtype=np.int64)
    counts = popcount_array(m)
    order = np.argsort(-counts.astype(np.int16), kind="stable")
    full = size - 1
    for mask_np in order:
        mask = int(mask_np)
        if mask == full:
            values[mask] = oracle.flow_value(mask)
            continue
        cap = None
        bits = ~mask & full
        while bits:
            low = bits & -bits
            sup_value = values[mask | low]
            if cap is None or sup_value < cap:
                cap = sup_value
            bits ^= low
        if cap == 0:
            values[mask] = 0
            continue
        values[mask] = oracle.flow_value(mask, limit=int(cap))
    probabilities = configuration_probabilities(net)
    max_value = int(values.max())
    pmf = np.zeros(max_value + 1, dtype=np.float64)
    np.add.at(pmf, values, probabilities)
    return FlowValueDistribution(
        pmf=tuple(float(p) for p in pmf),
        exact=True,
        flow_calls=oracle.calls,
    )


def sampled_flow_value_distribution(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    num_samples: int = 10_000,
    seed: int | np.random.Generator | None = 0,
    solver: str | MaxFlowSolver | None = None,
) -> FlowValueDistribution:
    """Monte-Carlo PMF of the surviving max-flow value.

    Distinct sampled configurations are solved once (cached), so the
    cost is bounded by the distinct-mask count, not the sample count.
    """
    if num_samples < 1:
        raise EstimationError("num_samples must be positive")
    rng = as_rng(seed)
    oracle = FeasibilityOracle(net, source, sink, 0, solver=solver)
    masks = sample_alive_masks(net, num_samples, rng=rng)
    cache: dict[int, int] = {}
    tally: dict[int, int] = {}
    for mask_np in masks:  # repro: noqa[RR112] one max-flow solve per sample
        mask = int(mask_np)
        value = cache.get(mask)
        if value is None:
            value = oracle.flow_value(mask)
            cache[mask] = value
        tally[value] = tally.get(value, 0) + 1
    max_value = max(tally) if tally else 0
    pmf = [tally.get(v, 0) / num_samples for v in range(max_value + 1)]
    return FlowValueDistribution(
        pmf=tuple(pmf),
        exact=False,
        flow_calls=oracle.calls,
    )
