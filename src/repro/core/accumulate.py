"""The ACCUMULATION procedure (paper §IV-B).

Given the two realization arrays and a class ``D_{E'}`` of assignments
supported by the surviving bottleneck pattern, compute

    r_{E'} = P( the G_s configuration and the G_t configuration jointly
               realize at least one assignment in D_{E'} ).

Example 3 explains why a plain product of side reliabilities is wrong:
the per-assignment events overlap in complicated ways.  The paper's fix
is inclusion–exclusion over assignment subsets ``X ⊆ D_{E'}`` using the
factorization ``p_X = P_s(X) · P_t(X)`` (the sides are independent
given the bottleneck pattern):

    r_{E'} = Σ_{∅≠X}  (−1)^{|X|+1} P_s(X) P_t(X).

Two exact implementations are provided and ablated in benchmark A1:

``zeta``
    Aggregate each side's configuration probabilities by realized mask
    restricted to ``D_{E'}``, superset-zeta transform to obtain every
    ``P_side(X)`` simultaneously, then the signed dot product.  Cost
    ``O(2^{m_side} + q 2^q)`` for ``q = |D_{E'}|`` — the paper's
    ``2^{d^k}``-flavoured constant.

``pairs``
    Aggregate each side to its *distinct* realized masks (there are at
    most ``min(2^{m_side}, 2^q)`` of them, usually a handful) and sum
    ``q_s(m) q_t(m')`` over pairs with ``m ∩ m' ≠ ∅`` — equivalently
    ``1 − P(no side realizes a common assignment)`` computed densely.
    Cost ``O(S · T)`` on distinct-mask counts; immune to large ``q``.

Both return identical values (a property test enforces it); ``auto``
picks ``zeta`` while ``2^q`` stays small and ``pairs`` otherwise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.arrays import RealizationArray
from repro.exceptions import IntractableError, ReproValueError
from repro.probability.bitset import bitplanes, pack_bitplanes, parity_array
from repro.probability.zeta import superset_zeta

__all__ = ["accumulate", "restrict_masks", "side_class_probabilities"]

#: ``zeta`` strategy refuses classes bigger than this many assignments.
MAX_ZETA_ASSIGNMENTS = 20


def restrict_masks(masks: np.ndarray, assignment_indices: Sequence[int]) -> np.ndarray:
    """Project realization masks onto a subset of assignment bits.

    Bit ``j`` of the output is bit ``assignment_indices[j]`` of the
    input — the mask over ``D_{E'}`` in class-local numbering.  One
    bit-plane transpose plus one packing matmul; no per-bit Python loop.
    """
    return pack_bitplanes(bitplanes(masks, list(assignment_indices)))


def side_class_probabilities(
    array: RealizationArray, assignment_indices: Sequence[int]
) -> np.ndarray:
    """Aggregate one side into ``q[mask] = P(realized class-set == mask)``.

    The output is indexed by masks over the restricted class (length
    ``2^q``) and sums to 1.
    """
    q = len(assignment_indices)
    if q > MAX_ZETA_ASSIGNMENTS:
        raise IntractableError(
            f"zeta accumulation over {q} assignments needs 2^{q} table entries",
            required=q,
            limit=MAX_ZETA_ASSIGNMENTS,
        )
    restricted = restrict_masks(array.masks, assignment_indices)
    table = np.zeros(1 << q, dtype=np.float64)
    np.add.at(table, restricted.astype(np.int64), array.probabilities)
    return table


def _accumulate_zeta(
    source: RealizationArray,
    sink: RealizationArray,
    assignment_indices: Sequence[int],
) -> float:
    q = len(assignment_indices)
    if q == 0:
        return 0.0
    qs = side_class_probabilities(source, assignment_indices)
    qt = side_class_probabilities(sink, assignment_indices)
    # P_side(X) = P(realized ⊇ X): superset sums of the aggregates.
    ps = superset_zeta(qs, inplace=True)
    pt = superset_zeta(qt, inplace=True)
    signs = -parity_array(q).astype(np.float64)  # (−1)^{|X|+1}
    signs[0] = 0.0
    return float(np.dot(signs, ps * pt))


def _distinct(
    array: RealizationArray, assignment_indices: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct restricted masks and their total probabilities."""
    restricted = restrict_masks(array.masks, assignment_indices)
    values, inverse = np.unique(restricted, return_inverse=True)
    weights = np.bincount(inverse, weights=array.probabilities, minlength=len(values))
    return values, weights


def _accumulate_pairs(
    source: RealizationArray,
    sink: RealizationArray,
    assignment_indices: Sequence[int],
) -> float:
    if len(assignment_indices) == 0:
        return 0.0
    ms, qs = _distinct(source, assignment_indices)
    mt, qt = _distinct(sink, assignment_indices)
    # hit[i, j] = the two realized sets share an assignment.
    hit = (ms[:, None] & mt[None, :]) != 0
    return float(qs @ hit.astype(np.float64) @ qt)


def accumulate(
    source: RealizationArray,
    sink: RealizationArray,
    assignment_indices: Sequence[int],
    *,
    strategy: str = "auto",
) -> float:
    """``r_{E'}`` for the class given by ``assignment_indices``.

    ``strategy`` is ``"zeta"``, ``"pairs"`` or ``"auto"``.
    """
    if source.num_assignments != sink.num_assignments:
        raise ReproValueError("side arrays disagree on the assignment count")
    for j in assignment_indices:
        if not (0 <= j < source.num_assignments):
            raise ReproValueError(f"assignment index {j} out of range")
    if strategy == "auto":
        strategy = "zeta" if len(assignment_indices) <= 12 else "pairs"
    if strategy == "zeta":
        return _accumulate_zeta(source, sink, assignment_indices)
    if strategy == "pairs":
        return _accumulate_pairs(source, sink, assignment_indices)
    raise ReproValueError(f"unknown accumulation strategy {strategy!r}")
