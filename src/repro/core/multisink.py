"""Broadcast (multi-subscriber) reliability.

The paper computes reliability for one subscriber; a streaming operator
cares about a *set* of subscribers.  Two natural quantities:

* :func:`broadcast_reliability` — probability that **every** subscriber
  in a set simultaneously receives the full rate ``d``.  Feasibility of
  one configuration is a single max-flow with a virtual super-sink fed
  by each subscriber through a ``d``-capacity arc: total flow
  ``d * |T|`` iff every per-subscriber arc saturates.
* :func:`coverage_curve` — for each subscriber, the individual
  reliability (one paper-style computation each) plus the expected
  fraction of subscribers served, the metric mesh-vs-tree debates in
  §II actually argue about.

Note the simultaneity: broadcast delivery shares link capacity between
subscribers, so broadcast reliability can be far below the product of
the individual reliabilities even with independent failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.naive import MAX_NAIVE_BITS
from repro.core.result import ReliabilityResult
from repro.core.summation import prob_fsum
from repro.exceptions import DemandError
from repro.flow.base import MaxFlowSolver
from repro.graph.network import FlowNetwork, Node
from repro.probability.bitset import popcount_array
from repro.probability.enumeration import check_enumerable, configuration_probabilities

import numpy as np

__all__ = ["broadcast_reliability", "coverage_curve", "coverage_distribution", "CoverageReport"]

_SUPER_SINK = "__broadcast_sink__"


def _augmented(net: FlowNetwork, sinks: Sequence[Node], rate: int) -> FlowNetwork:
    """Copy of ``net`` plus a super-sink drained by every subscriber.

    The virtual arcs never fail; the configuration space stays the
    original links' (virtual arcs occupy the high indices and are
    always included in the alive mask by the oracle wrapper below).
    """
    aug = net.copy()
    for sink in sinks:
        aug.add_link(sink, _SUPER_SINK, rate, 0.0)
    return aug


def broadcast_reliability(
    net: FlowNetwork,
    source: Node,
    sinks: Sequence[Node],
    rate: int,
    *,
    solver: str | MaxFlowSolver | None = None,
) -> ReliabilityResult:
    """P(every subscriber receives the full rate simultaneously).

    Exact, by monotone-pruned enumeration over the original links (the
    virtual super-sink arcs are failure-free).  Subject to the same
    size budget as the naive algorithm.
    """
    if not sinks:
        raise DemandError("need at least one subscriber")
    if len(set(sinks)) != len(sinks):
        raise DemandError("duplicate subscribers")
    if rate < 1:
        raise DemandError("rate must be >= 1")
    for sink in sinks:
        if not net.has_node(sink):
            raise DemandError(f"subscriber {sink!r} is not in the network")
        if sink == source:
            raise DemandError("the source cannot subscribe to itself")
    if net.has_node(_SUPER_SINK):
        raise DemandError(f"node name {_SUPER_SINK!r} is reserved")

    m = net.num_links
    check_enumerable(m, limit=MAX_NAIVE_BITS)
    aug = _augmented(net, sinks, rate)
    target = rate * len(sinks)
    oracle = FeasibilityOracle(aug, source, _SUPER_SINK, target, solver=solver)
    virtual_mask = ((1 << aug.num_links) - 1) ^ ((1 << m) - 1)

    size = 1 << m
    feasible = np.zeros(size, dtype=bool)
    counts = popcount_array(m)
    order = np.argsort(-counts.astype(np.int16), kind="stable")
    for mask_np in order:
        mask = int(mask_np)
        doomed = False
        bits = ~mask & (size - 1)
        while bits:
            low = bits & -bits
            if not feasible[mask | low]:
                doomed = True
                break
            bits ^= low
        if doomed:
            continue
        feasible[mask] = oracle.feasible(mask | virtual_mask)
    probabilities = configuration_probabilities(net)
    value = float(probabilities[feasible].sum())
    return ReliabilityResult(
        value=value,
        method="broadcast",
        flow_calls=oracle.calls,
        configurations=size,
        details={"subscribers": list(sinks), "rate": rate},
    )


@dataclass(frozen=True)
class CoverageReport:
    """Per-subscriber reliabilities plus aggregate coverage."""

    subscribers: tuple[Node, ...]
    individual: tuple[float, ...]
    broadcast: float

    @property
    def expected_coverage(self) -> float:
        """Expected fraction of subscribers individually served.

        Linearity of expectation: the mean of the individual
        reliabilities (no independence needed).  Note this counts each
        subscriber served *on its own*, ignoring capacity contention —
        an upper-bound companion to :attr:`broadcast`.
        """
        return prob_fsum(self.individual) / len(self.individual)

    @property
    def weakest(self) -> tuple[Node, float]:
        """The worst-served subscriber and its reliability."""
        i = min(range(len(self.individual)), key=self.individual.__getitem__)
        return self.subscribers[i], self.individual[i]


def coverage_curve(
    net: FlowNetwork,
    source: Node,
    sinks: Sequence[Node],
    rate: int,
    *,
    method: str = "auto",
    solver: str | MaxFlowSolver | None = None,
) -> CoverageReport:
    """Individual reliability per subscriber plus the broadcast value."""
    individual = []
    for sink in sinks:
        result = compute_reliability(
            net, demand=FlowDemand(source, sink, rate), method=method, solver=solver
        )
        individual.append(float(result.value))
    broadcast = broadcast_reliability(net, source, sinks, rate, solver=solver)
    return CoverageReport(
        subscribers=tuple(sinks),
        individual=tuple(individual),
        broadcast=broadcast.value,
    )


def coverage_distribution(
    net: FlowNetwork,
    source: Node,
    sinks: Sequence[Node],
    rate: int,
    *,
    solver: str | MaxFlowSolver | None = None,
) -> tuple[float, ...]:
    """Exact PMF of the number of *individually servable* subscribers.

    Entry ``k`` is the probability that exactly ``k`` of the subscribers
    could each receive rate ``rate`` on their own (capacity contention
    between subscribers ignored — the per-subscriber view; see
    :func:`broadcast_reliability` for the simultaneous one).  The
    marginals recover each subscriber's individual reliability, and the
    mean recovers :attr:`CoverageReport.expected_coverage` times the
    subscriber count — both pinned by tests.

    Cost: one joint enumeration of the ``2^m`` configurations with one
    bounded max-flow per (configuration, subscriber); monotone pruning
    applies per subscriber.
    """
    if not sinks:
        raise DemandError("need at least one subscriber")
    if rate < 1:
        raise DemandError("rate must be >= 1")
    for sink in sinks:
        if not net.has_node(sink):
            raise DemandError(f"subscriber {sink!r} is not in the network")
    m = net.num_links
    check_enumerable(m, limit=MAX_NAIVE_BITS)
    size = 1 << m
    counts = popcount_array(m)
    order = np.argsort(-counts.astype(np.int16), kind="stable")

    served = np.zeros((size, len(sinks)), dtype=bool)
    for j, sink in enumerate(sinks):
        oracle = FeasibilityOracle(net, source, sink, rate, solver=solver)
        column = served[:, j]
        for mask_np in order:
            mask = int(mask_np)
            doomed = False
            bits = ~mask & (size - 1)
            while bits:
                low = bits & -bits
                if not column[mask | low]:
                    doomed = True
                    break
                bits ^= low
            if doomed:
                continue
            column[mask] = oracle.feasible(mask)

    probabilities = configuration_probabilities(net)
    totals = served.sum(axis=1)
    pmf = np.zeros(len(sinks) + 1, dtype=np.float64)
    np.add.at(pmf, totals, probabilities)
    return tuple(float(x) for x in pmf)
