"""Bit-parallel §III-C realization kernel (block-vectorized lattice walk).

The serial builder (:func:`repro.core.arrays.build_side_array`) and the
chunked engine (:mod:`repro.core.engine`) both settle the side lattice
one configuration at a time: per entry, a Python pruning loop, a Python
screen evaluation, and only then (maybe) a max-flow solve.  Once screens
and pruning settle most of the lattice — exactly the regime the engine's
benches show — that per-entry Python overhead dominates the build.

This module walks the lattice in fixed-size **blocks** of
``2^block_bits`` configurations and keeps every certain decision
array-at-a-time:

* the realization masks themselves live as one ``uint64`` column per
  configuration (bit ``j`` = assignment ``j`` realized) — the final
  :class:`~repro.core.arrays.RealizationArray` storage, built in place;
* blocks are visited in **descending popcount of their high pattern**
  (:func:`repro.core.latticewalk.popcount_descending_order`) and levels
  inside a block in descending popcount too, so every immediate superset
  of a configuration — same-block *and* cross-block — is settled before
  the configuration itself.  The *doom* half of monotone pruning is then
  a handful of vectorized gathers: per missing bit, one ``AND`` of the
  superset masks into the block's viable column;
* the engine's **budget screen** becomes one matmul per block: the
  block's alive matrix (:func:`repro.probability.bitset.lattice_bitplanes`)
  times the per-port low-bit feeder capacities, plus the constant
  high-bit/external contribution, gives every configuration's per-port
  budget at once; ``sum_l min(a_l, budget_l) < d`` screens whole
  ``(configuration, assignment)`` planes without touching Python;
* only the survivors fall through to the max-flow solver — cold solves,
  or per-assignment :class:`~repro.flow.incremental.IncrementalMaxFlow`
  engines fed through :meth:`~repro.flow.incremental.IncrementalMaxFlow.goto_batch`
  (the connectivity screen stays lazy and per-configuration, exactly as
  in the engine);
* realized bits are scattered back with one fancy-indexed ``OR`` per
  ``(level, assignment)`` group.

Soundness is unchanged — pruning consults only settled entries and the
screens are exact negatives — so the masks are **bit-identical** to the
serial scalar path at every block size (the property suite in
``tests/properties/test_prop_bitplane.py`` pins masks, values and
details); only ``flow_calls`` may differ.  The kernel also serves the
chunked engine: a chunk is just a sub-lattice with the chunk's high
pattern as a fixed external base, so ``--workers`` and ``--block-bits``
compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.arrays import (
    RealizationArray,
    _side_template,
    _validate_side_request,
)
from repro.core.engine import RealizationScreens
from repro.core.latticewalk import popcount_descending_order
from repro.exceptions import ReproValueError
from repro.flow.base import MaxFlowSolver, get_solver
from repro.flow.incremental import IncrementalMaxFlow, resolve_incremental
from repro.flow.residual import ResidualTemplate
from repro.graph.network import FlowNetwork, Node
from repro.graph.transforms import SubnetworkView
from repro.obs.progress import progress_ticker
from repro.obs.recorder import (
    ARRAY_ENTRIES_BUILT,
    AUGMENTING_PATHS_SAVED,
    BLOCK_SCREENED,
    FLOW_REPAIRS,
    FLOW_SOLVES,
    SCREENED_SOLVES,
    count,
    span,
)
from repro.probability.bitset import (
    MAX_PLANE_BITS,
    lattice_bitplanes,
    pack_bitplanes,
    popcount_array,
)
from repro.probability.enumeration import check_enumerable, configuration_probabilities

__all__ = [
    "DEFAULT_BLOCK_BITS",
    "BlockStats",
    "blocked_side_masks",
    "build_side_array_blocked",
    "resolve_block_bits",
]

#: Default block size (``2^14`` configurations), per the sizing table in
#: ``docs/PERFORMANCE.md``: big enough that the per-block Python overhead
#: vanishes, small enough that the block working set stays cache-sized.
DEFAULT_BLOCK_BITS = 14


def resolve_block_bits(block_bits: int | None) -> int | None:
    """Validate a ``block_bits`` option (``None`` = scalar kernels).

    The accepted range is ``1..MAX_PLANE_BITS`` — the alive matrix of a
    block must stay materialisable.  Used eagerly by the CLI so a bad
    flag fails before any network is loaded.
    """
    if block_bits is None:
        return None
    value = int(block_bits)
    if not 1 <= value <= MAX_PLANE_BITS:
        raise ReproValueError(
            f"block_bits must be in [1, {MAX_PLANE_BITS}], got {block_bits}"
        )
    return value


@dataclass
class BlockStats:
    """Accounting of one :func:`blocked_side_masks` run.

    ``screened`` counts every (configuration, assignment) pair settled
    by a screen — the same quantity the engine reports as
    ``screened_solves`` — while ``block_screened`` is the subset the
    vectorized block-level budget matmul settled (the rest is the lazy
    per-configuration connectivity screen).
    """

    flow_calls: int = 0
    screened: int = 0
    block_screened: int = 0
    repairs: int = 0
    paths_saved: int = 0
    blocks: int = 0


def _port_capacity_model(
    screens: RealizationScreens,
    *,
    n_bits: int,
    block_bits: int,
    external_base: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Split every port's feeder capacities by where their link bit lives.

    Returns ``(low_caps, high_caps, const_caps, unbounded)`` where
    ``low_caps`` is ``(block_bits, L)`` (feeders on in-block bits),
    ``high_caps`` is ``(n_bits - block_bits, L)`` (feeders on block-high
    bits) and ``const_caps[l]`` is the contribution of external-base
    bits, so a block's per-port budgets are one matmul plus a constant.
    ``unbounded`` lists terminal ports (no budget bound).
    """
    feeders = screens.feeders
    num_ports = len(feeders)
    low_caps = np.zeros((block_bits, num_ports), dtype=np.int64)
    high_caps = np.zeros((n_bits - block_bits, num_ports), dtype=np.int64)
    const_caps = np.zeros(num_ports, dtype=np.int64)
    unbounded: list[int] = []
    for l, feeder in enumerate(feeders):
        if feeder is None:
            unbounded.append(l)
            continue
        for index, capacity in feeder:
            if index < block_bits:
                low_caps[index, l] += capacity
            elif index < n_bits:
                high_caps[index - block_bits, l] += capacity
            elif (external_base >> index) & 1:
                const_caps[l] += capacity
    return low_caps, high_caps, const_caps, unbounded


def _screen_bits_for_block(
    budgets: np.ndarray,
    assignment_matrix: np.ndarray,
    *,
    demand: int,
    unbounded: Sequence[int],
) -> np.ndarray:
    """uint64 column: bit ``j`` set = assignment ``j`` budget-screened.

    ``budgets`` is the block's ``(2^b, L)`` per-port alive capacity;
    terminal ports are unbounded, and since ``min(a_l, demand) = a_l``
    always, clamping their column to ``demand`` reproduces the engine's
    ``None`` handling exactly.
    """
    if unbounded:
        budgets[:, list(unbounded)] = demand
    planes = np.empty((budgets.shape[0], assignment_matrix.shape[0]), dtype=bool)
    for j in range(assignment_matrix.shape[0]):
        bounds = np.minimum(budgets, assignment_matrix[j][None, :]).sum(axis=1)
        planes[:, j] = bounds < demand
    return pack_bitplanes(planes)


def blocked_side_masks(
    net: FlowNetwork,
    template: ResidualTemplate,
    port_names: Sequence[str],
    s_idx: int,
    t_idx: int,
    *,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: MaxFlowSolver,
    prune: bool = True,
    screen: bool = True,
    incremental: bool = False,
    n_bits: int,
    external_base: int = 0,
    block_bits: int = DEFAULT_BLOCK_BITS,
    tick: Callable[[int], None] | None = None,
) -> tuple[np.ndarray, BlockStats]:
    """Fill one (sub-)lattice's realization masks block-vectorized.

    The lattice spans bits ``[0, n_bits)``; ``external_base`` pins any
    higher bits of the full configuration (the chunked engine passes its
    chunk pattern here, the serial front door passes 0).  Returns the
    ``uint64`` mask column for all ``2^n_bits`` configurations in index
    order plus the :class:`BlockStats` accounting.
    """
    check_enumerable(n_bits)
    b = min(resolve_block_bits(block_bits) or DEFAULT_BLOCK_BITS, n_bits)
    size = 1 << n_bits
    bsize = 1 << b
    num_high = n_bits - b
    num_assignments = len(assignments)
    all_viable = np.uint64((1 << num_assignments) - 1)
    one = np.uint64(1)

    rows = np.zeros(size, dtype=np.uint64)
    stats = BlockStats()

    counts_low = popcount_array(b)
    # Levels descending: every in-block immediate superset of a level-l
    # configuration lives at level l+1, already settled.
    level_indices = [
        np.nonzero(counts_low == level)[0].astype(np.int64)
        for level in range(b, -1, -1)
    ]
    alive_matrix = lattice_bitplanes(b).astype(np.int64)

    screens = (
        RealizationScreens(net, role=role, terminal=terminal, ports=ports, demand=demand)
        if screen
        else None
    )
    if screens is not None:
        low_caps, high_caps, const_caps, unbounded = _port_capacity_model(
            screens, n_bits=n_bits, block_bits=b, external_base=external_base
        )
        low_budgets = alive_matrix @ low_caps  # shared across blocks
        assignment_matrix = np.asarray(
            [[int(a) for a in assignment] for assignment in assignments],
            dtype=np.int64,
        )

    caps_by_assignment = [
        {name: int(a) for name, a in zip(port_names, assignment)}
        for assignment in assignments
    ]
    engines: list[IncrementalMaxFlow | None] = [None] * num_assignments

    def incremental_engine(j: int) -> IncrementalMaxFlow:
        engine = engines[j]
        if engine is None:
            engine = IncrementalMaxFlow(
                template,
                s_idx,
                t_idx,
                solver=solver,
                limit=demand,
                alive=0,
                virtual_capacities=caps_by_assignment[j],
            )
            engines[j] = engine
        return engine

    # Cross-block pruning is complete because blocks run most-alive
    # high pattern first: flipping a high bit on lands in an
    # already-settled block.
    if prune:
        high_order = popcount_descending_order(num_high)
    else:
        high_order = np.arange(1 << num_high)

    for high in high_order:
        high_pattern = int(high)
        block_base = high_pattern << b
        ext_base_block = external_base | block_base

        viable_block = np.full(bsize, all_viable, dtype=np.uint64)
        if prune:
            for q in range(num_high):
                if (high_pattern >> q) & 1:
                    continue
                sup_base = (high_pattern | (1 << q)) << b
                viable_block &= rows[sup_base : sup_base + bsize]

        if screens is not None:
            budgets = low_budgets + (
                const_caps
                + np.asarray(
                    [(high_pattern >> q) & 1 for q in range(num_high)], dtype=np.int64
                )
                @ high_caps
            )[None, :]
            screen_bits = _screen_bits_for_block(
                budgets, assignment_matrix, demand=demand, unbounded=unbounded
            )
        else:
            screen_bits = None

        with span("bitplane.block", block=high_pattern, size=bsize):
            reachable_cache: dict[int, tuple[bool, ...]] = {}
            for idx in level_indices:
                viable = viable_block[idx].copy()
                if prune:
                    for p in range(b):
                        bit = 1 << p
                        absent = (idx & bit) == 0
                        if absent.any():
                            viable[absent] &= rows[block_base + (idx[absent] | bit)]
                if screen_bits is not None:
                    hits = int(np.bitwise_count(viable & screen_bits[idx]).sum())
                    if hits:
                        stats.block_screened += hits
                        stats.screened += hits
                        viable &= ~screen_bits[idx]
                live = np.nonzero(viable)[0]
                if live.size == 0:
                    continue
                lows = idx[live]
                masks64 = viable[live]
                for j in range(num_assignments):
                    wants = ((masks64 >> np.uint64(j)) & one) == one
                    if not wants.any():
                        continue
                    candidates = [int(low) for low in lows[wants]]
                    if screens is not None:
                        survivors: list[int] = []
                        for low in candidates:
                            reachable = reachable_cache.get(low)
                            if reachable is None:
                                reachable = screens.reachable_ports(ext_base_block | low)
                                reachable_cache[low] = reachable
                            if screens.connectivity_screened(assignments[j], reachable):
                                stats.screened += 1
                            else:
                                survivors.append(low)
                        candidates = survivors
                    if not candidates:
                        continue
                    full_masks = [ext_base_block | low for low in candidates]
                    if incremental:
                        engine = incremental_engine(j)
                        calls_before = engine.solver_calls
                        values = engine.goto_batch(full_masks)
                        stats.flow_calls += engine.solver_calls - calls_before
                    else:
                        values = []
                        for full in full_masks:
                            graph = template.configure(
                                alive=full, virtual_capacities=caps_by_assignment[j]
                            )
                            stats.flow_calls += 1
                            values.append(solver.solve(graph, s_idx, t_idx, limit=demand))
                    realized = np.asarray(values, dtype=np.int64) >= demand
                    if realized.any():
                        targets = block_base + np.asarray(candidates, dtype=np.int64)[realized]
                        rows[targets] = rows[targets] | (one << np.uint64(j))
        if tick is not None:
            tick(bsize * num_assignments)
        stats.blocks += 1

    for engine in engines:
        if engine is not None:
            stats.repairs += engine.repairs
            stats.paths_saved += engine.paths_saved
    return rows, stats


def build_side_array_blocked(
    side: SubnetworkView,
    *,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
    screen: bool = True,
    incremental: bool | None = None,
    block_bits: int = DEFAULT_BLOCK_BITS,
) -> RealizationArray:
    """Bit-parallel drop-in for :func:`repro.core.arrays.build_side_array`.

    Masks, probabilities and ``num_assignments`` are bit-identical to
    the serial builder (and therefore to the engine at every worker
    count); only ``flow_calls`` differs, because block-local pruning,
    the vectorized screens and the incremental engines each change how
    many entries reach the solver — never what the entries say.
    """
    net = side.network
    m = net.num_links
    check_enumerable(m)
    _validate_side_request(
        net, role=role, assignments=assignments, ports=ports, demand=demand
    )
    template, port_names, s_idx, t_idx = _side_template(
        net, role=role, terminal=terminal, ports=ports, demand=demand
    )
    engine = get_solver(solver)
    use_incremental = resolve_incremental(engine, incremental)
    num_assignments = len(assignments)
    size = 1 << m

    # A literal ticker label per role (RR111 closes the label vocabulary).
    ticker_label = "arrays.source" if role == "source" else "arrays.sink"
    with progress_ticker(ticker_label, total=num_assignments * size) as ticker:
        rows, stats = blocked_side_masks(
            net,
            template,
            port_names,
            s_idx,
            t_idx,
            role=role,
            terminal=terminal,
            ports=ports,
            assignments=assignments,
            demand=demand,
            solver=engine,
            prune=prune,
            screen=screen,
            incremental=use_incremental,
            n_bits=m,
            external_base=0,
            block_bits=block_bits,
            tick=ticker.tick,
        )
    count(FLOW_SOLVES, stats.flow_calls)
    if stats.screened:
        count(SCREENED_SOLVES, stats.screened)
    if stats.block_screened:
        count(BLOCK_SCREENED, stats.block_screened)
    if stats.repairs:
        count(FLOW_REPAIRS, stats.repairs)
    if stats.paths_saved:
        count(AUGMENTING_PATHS_SAVED, stats.paths_saved)
    count(ARRAY_ENTRIES_BUILT, num_assignments * size)
    return RealizationArray(
        masks=rows,  # already the packed uint64 masks
        probabilities=configuration_probabilities(net),
        num_assignments=num_assignments,
        flow_calls=stats.flow_calls,
    )
