"""Stratified Monte-Carlo estimation.

Plain Monte-Carlo wastes samples re-confirming the overwhelmingly
likely strata (few failures) while rarely visiting the strata where
feasibility actually flips.  Stratifying by the *number of alive links*
fixes both:

* the stratum weights ``P(N = j)`` are computed **exactly** (the
  Poisson–binomial distribution, by dynamic programming over links);
* within stratum ``j``, configurations are drawn from the exact
  conditional distribution by a sequential DP walk;
* degenerate strata are free: ``j = m`` is the single all-alive
  configuration, and any stratum whose total capacity cannot reach the
  demand contributes exactly 0.

The estimator is unbiased with variance never above plain MC at equal
sample counts (law of total variance); the gain is largest when the
reliability is extreme — the regime streaming systems live in.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.result import EstimateResult
from repro.core.montecarlo import wilson_interval
from repro.core.summation import KahanSum
from repro.exceptions import EstimationError, ReproValueError
from repro.flow.base import MaxFlowSolver
from repro.graph.generators import as_rng
from repro.graph.network import FlowNetwork

__all__ = [
    "poisson_binomial",
    "poisson_binomial_suffix",
    "sample_with_alive_count",
    "stratified_montecarlo_reliability",
    "validate_probabilities",
]


def validate_probabilities(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Coerce ``values`` to a float64 vector and enforce the ``[0, 1]`` domain.

    The single validation gate shared by the Poisson-binomial machinery
    below and the rare-event spectrum conditioning
    (:mod:`repro.core.rare`) — one code path, so the RR204 domain
    discipline holds wherever raw probabilities enter Eq. 2/3-style
    accumulation.  Raises :class:`~repro.exceptions.ReproValueError` on
    any entry outside ``[0, 1]`` (NaN included).
    """
    probs = np.asarray(values, dtype=np.float64)
    if probs.ndim != 1:
        raise ReproValueError(
            f"probability vector must be one-dimensional, got shape {probs.shape}"
        )
    if probs.size and not bool(np.all((probs >= 0.0) & (probs <= 1.0))):
        bad = probs[~((probs >= 0.0) & (probs <= 1.0))][:3]
        raise ReproValueError(
            f"probabilities outside [0, 1]: {bad.tolist()} ..."
        )
    return probs


def poisson_binomial(failure_probabilities: Sequence[float] | np.ndarray) -> np.ndarray:
    """Exact distribution of the number of *alive* links.

    ``result[j] = P(exactly j of the m links are up)``; standard
    ``O(m^2)`` convolution DP.  Inputs are validated to ``[0, 1]``
    (:class:`~repro.exceptions.ReproValueError` otherwise).
    """
    probs = validate_probabilities(failure_probabilities)
    dist = np.array([1.0])
    for p in probs:
        alive = 1.0 - p
        new = np.zeros(len(dist) + 1)
        new[: len(dist)] += dist * p
        new[1:] += dist * alive
        dist = new
    return dist


def poisson_binomial_suffix(
    failure_probabilities: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Suffix table ``T[i, c] = P(exactly c alive among links i..m-1)``.

    The reusable half of the Poisson-binomial DP: row 0 is the full
    distribution (``T[0, c] == poisson_binomial(p)[c]``), and the inner
    rows drive the exact conditional sampler
    (:func:`sample_with_alive_count`) and the rare-event spectrum
    conditioning.  Inputs are validated to ``[0, 1]``.
    """
    probs = validate_probabilities(failure_probabilities)
    m = len(probs)
    table = np.zeros((m + 1, m + 1))
    table[m, 0] = 1.0
    for i in range(m - 1, -1, -1):
        p = probs[i]
        table[i, 0] = p * table[i + 1, 0]
        for c in range(1, m - i + 1):
            table[i, c] = p * table[i + 1, c] + (1.0 - p) * table[i + 1, c - 1]
    return table


# Backwards-compatible private alias (pre-public name).
_suffix_counts = poisson_binomial_suffix


def sample_with_alive_count(
    failure_probabilities: list[float],
    count: int,
    rng: np.random.Generator,
    *,
    suffix: np.ndarray | None = None,
) -> int:
    """One alive-mask drawn from the exact conditional distribution
    given that exactly ``count`` links are alive."""
    m = len(failure_probabilities)
    if not 0 <= count <= m:
        raise EstimationError(f"count {count} outside [0, {m}]")
    if suffix is None:
        suffix = _suffix_counts(failure_probabilities)
    if suffix[0, count] <= 0.0:
        raise EstimationError(f"stratum {count} has probability zero")
    mask = 0
    remaining = count
    for i in range(m):
        if remaining == 0:
            break
        p = failure_probabilities[i]
        p_alive_given = (1.0 - p) * suffix[i + 1, remaining - 1] / suffix[i, remaining]
        # Each draw's conditional law depends on the alive-count left by
        # earlier draws — batching would change the replay stream.
        if rng.random() < p_alive_given:  # repro: noqa[RR114] sequential DP
            mask |= 1 << i
            remaining -= 1
    return mask


def stratified_montecarlo_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    num_samples: int = 10_000,
    confidence: float = 0.95,
    seed: int | np.random.Generator | None = 0,
    solver: str | MaxFlowSolver | None = None,
) -> EstimateResult:
    """Stratified estimate of the reliability.

    Samples are allocated to alive-count strata proportionally to the
    stratum probabilities (at least one each); degenerate strata are
    resolved exactly.  The reported interval is a Wilson interval on
    the effective hit ratio — slightly conservative for the stratified
    estimator (its true variance is lower), so coverage only improves.
    """
    demand.validate_against(net)
    if num_samples < 1:
        raise EstimationError("num_samples must be positive")
    rng = as_rng(seed)
    probs = net.failure_probabilities()
    m = net.num_links
    weights = poisson_binomial(probs)
    suffix = _suffix_counts(probs)
    oracle = FeasibilityOracle(net, demand.source, demand.sink, demand.rate, solver=solver)

    # Sort capacities once: stratum j is hopeless when even the j
    # biggest links cannot carry the demand to begin with.
    sorted_caps = sorted(net.capacities(), reverse=True)

    value = KahanSum()
    spent = 0
    hits_effective = KahanSum()
    cache: dict[int, bool] = {}
    full_mask = (1 << m) - 1

    for j in range(m, -1, -1):
        weight = float(weights[j])
        if weight <= 0.0:
            continue
        if sum(sorted_caps[:j]) < demand.rate:
            continue  # contributes exactly 0
        if j == m:
            # single configuration: resolve exactly
            feasible = oracle.feasible(full_mask)
            value.add(weight * (1.0 if feasible else 0.0))
            if feasible:
                hits_effective.add(weight * num_samples)
            continue
        allocation = max(1, round(num_samples * weight))
        stratum_hits = 0
        for _ in range(allocation):
            mask = sample_with_alive_count(probs, j, rng, suffix=suffix)
            verdict = cache.get(mask)
            if verdict is None:
                verdict = oracle.feasible(mask)
                cache[mask] = verdict
            if verdict:
                stratum_hits += 1
        spent += allocation
        ratio = stratum_hits / allocation
        value.add(weight * ratio)
        hits_effective.add(weight * ratio * num_samples)

    hits = int(round(min(num_samples, max(0.0, hits_effective.value))))
    low, high = wilson_interval(hits, num_samples, confidence)
    # Centre the interval on the stratified point estimate.
    shift = value.value - hits / num_samples
    low = min(1.0, max(0.0, low + shift))
    high = min(1.0, max(0.0, high + shift))
    return EstimateResult(
        value=float(min(1.0, max(0.0, value.value))),
        low=low,
        high=high,
        confidence=confidence,
        num_samples=num_samples,
        hits=hits,
        method="montecarlo-stratified",
        details={
            "sampled_configurations": spent,
            "flow_calls": oracle.calls,
            "strata": int(np.count_nonzero(weights > 0)),
        },
    )
