"""Time-dependent reliability under repairable links.

The static model asks "is delivery up at a random instant?".  Operators
also ask "what does the delivery probability look like *t* seconds
after launch, when everything started up?".  With each link alternating
exponential up/down periods (the alternating renewal process that also
drives :class:`repro.p2p.StreamingSimulator`), the link availability at
time ``t`` has the classic closed form

    A(t) = μ/(λ+μ) + [A(0) − μ/(λ+μ)] · e^{−(λ+μ) t}

with failure rate ``λ = 1/mean_up`` and repair rate ``μ = 1/mean_down``.
Links stay independent at any fixed ``t``, so the *pointwise* delivery
probability is exactly the static reliability evaluated at the
time-dependent failure probabilities ``p_e(t) = 1 − A_e(t)`` — the
whole exact toolbox applies per time point.

(Pointwise availability, not interval survivorship: the probability
that delivery held *continuously* over ``[0, t]`` is a different, much
harder quantity; the discrete-event simulator measures its time-average
cousin, the continuity index.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.exceptions import EstimationError
from repro.graph.network import FlowNetwork

__all__ = ["availability_at", "LinkDynamics", "reliability_over_time"]


def availability_at(
    mean_up: float,
    mean_down: float,
    t: float,
    *,
    initially_up: bool = True,
) -> float:
    """Pointwise availability of one alternating-renewal component.

    ``mean_up``/``mean_down`` are the exponential means (seconds).
    ``mean_down = 0`` means instantaneous repair (availability 1), and
    ``mean_up = inf`` a component that never fails.
    """
    if mean_up <= 0:
        raise EstimationError("mean_up must be positive")
    if mean_down < 0:
        raise EstimationError("mean_down must be non-negative")
    if t < 0:
        raise EstimationError("time must be non-negative")
    if math.isinf(mean_up):
        return 1.0
    if mean_down == 0:
        return 1.0
    lam = 1.0 / mean_up
    mu = 1.0 / mean_down
    stationary = mu / (lam + mu)
    start = 1.0 if initially_up else 0.0
    return stationary + (start - stationary) * math.exp(-(lam + mu) * t)


@dataclass(frozen=True)
class LinkDynamics:
    """Up/down dynamics of one link."""

    mean_up: float
    mean_down: float
    initially_up: bool = True

    def failure_probability_at(self, t: float) -> float:
        """``1 − A(t)``, clipped into the library's ``[0, 1)`` domain."""
        p = 1.0 - availability_at(
            self.mean_up, self.mean_down, t, initially_up=self.initially_up
        )
        return min(max(p, 0.0), 1.0 - 1e-12)


def reliability_over_time(
    net: FlowNetwork,
    demand: FlowDemand,
    dynamics: Sequence[LinkDynamics],
    times: Sequence[float],
    *,
    method: str = "auto",
    **options: object,
) -> list[float]:
    """Exact pointwise delivery probability at each time in ``times``.

    ``dynamics[i]`` describes link ``i`` (one entry per link).  The
    probabilities stored on ``net`` are ignored.  Each time point costs
    one exact computation with the chosen ``method``.
    """
    if len(dynamics) != net.num_links:
        raise EstimationError(
            f"need one LinkDynamics per link ({net.num_links}), got {len(dynamics)}"
        )
    demand.validate_against(net)
    values: list[float] = []
    for t in times:
        probs = [d.failure_probability_at(t) for d in dynamics]
        snapshot = net.with_failure_probabilities(probs)
        result = compute_reliability(snapshot, demand=demand, method=method, **options)
        values.append(float(result.value))
    return values
