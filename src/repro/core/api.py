"""High-level entry point: :func:`compute_reliability`.

Dispatches to the right algorithm:

* ``method="auto"`` — discover a bottleneck cut; if one exists whose
  sides are enumerable, run the paper's algorithm; otherwise fall back
  to factoring (exact on any network) for moderate link counts, to the
  rare-event estimator tier (:mod:`repro.core.rare`) once the network
  outgrows every exact engine's enumeration guard, and to naive only
  for tiny instances where it is just as cheap.
* explicit ``method`` — any name from :func:`available_methods`:
  the exact engines (``naive``, ``naive-parallel``, ``bottleneck``,
  ``bridge``, ``chain``, ``factoring``, ``series-parallel``,
  ``frontier``, ``frontier-directed``, ``minpaths``) and the
  estimators (``montecarlo``, ``montecarlo-stratified``, ``rare``).

All exact methods return a
:class:`~repro.core.result.ReliabilityResult`; the estimators return an
:class:`~repro.core.result.EstimateResult` (same ``float(...)``
protocol).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.bridge import bridge_reliability
from repro.core.bottleneck import bottleneck_reliability
from repro.core.chain import chain_reliability
from repro.core.demand import FlowDemand
from repro.core.factoring import factoring_reliability
from repro.core.montecarlo import montecarlo_reliability
from repro.core.naive import MAX_NAIVE_BITS, naive_reliability
from repro.core.result import EstimateResult, ReliabilityResult
from repro.exceptions import DecompositionError, ReproError
from repro.graph.cuts import find_bottleneck
from repro.graph.network import FlowNetwork, Node
from repro.obs.export import phase_summary
from repro.obs.recorder import current_recorder

__all__ = [
    "COALESCIBLE_METHODS",
    "available_methods",
    "compute_reliability",
    "dispatch_query",
    "is_coalescible",
]

#: Methods the serving daemon (:mod:`repro.serve`) may merge into one
#: coalesced sweep batch: only the bottleneck pipeline separates the
#: combinatorial phase (cacheable realization arrays) from the
#: probability phase, which is what :func:`repro.core.sweep.plan_batch`
#: exploits.  ``None`` (no explicit method) coalesces as ``"auto"``.
COALESCIBLE_METHODS = frozenset({"auto", "bottleneck"})

#: "auto" only picks naive below this many links (it is never *better*
#: than factoring, just simpler to predict).
_AUTO_NAIVE_BITS = 12
#: "auto" only accepts a bottleneck split whose larger side stays below
#: this many links.
_AUTO_SIDE_BITS = 20
#: Past this many links (with no enumerable bottleneck split) "auto"
#: stops pretending an exact answer is reachable and hands the query to
#: the rare-event estimator tier instead of factoring.
_AUTO_ESTIMATE_LINKS = 24
#: The estimator tier's bitmask-packing ceiling (shared with
#: ``repro.probability.bitset``); beyond it "auto" has no path and the
#: explicit engines' own guards apply.
_AUTO_ESTIMATE_MAX_LINKS = 63


def available_methods() -> list[str]:
    """Names accepted by :func:`compute_reliability`."""
    return [
        "auto",
        "naive",
        "naive-parallel",
        "bottleneck",
        "bridge",
        "factoring",
        "chain",
        "series-parallel",
        "frontier",
        "frontier-directed",
        "minpaths",
        "montecarlo",
        "montecarlo-stratified",
        "rare",
    ]


def compute_reliability(
    net: FlowNetwork,
    source: Node | None = None,
    sink: Node | None = None,
    rate: int | None = None,
    *,
    demand: FlowDemand | None = None,
    method: str = "auto",
    **options: Any,
) -> ReliabilityResult | EstimateResult:
    """Compute (or estimate) the reliability of ``net`` for a demand.

    The demand is given either as a :class:`FlowDemand` via ``demand=``
    or as the positional triple ``source, sink, rate``.

    ``options`` are forwarded to the chosen algorithm (e.g. ``solver=``,
    ``cut=``, ``strategy=``, ``num_samples=``, ``cuts=`` for chain,
    ``workers=`` for the parallel engines, ``incremental=`` for the
    Gray-walk flow-repair kernels, ``block_bits=`` for the bit-parallel
    block kernel, ``cache=`` an
    :class:`repro.core.sweep.ArrayCache` for realization-array reuse —
    in ``auto`` mode the ``workers=``, ``incremental=``,
    ``block_bits=`` and ``cache=`` options reach the bottleneck engine
    when that path wins; ``incremental=`` also reaches the naive
    fallback, and all are dropped by factoring).

    Examples
    --------
    >>> from repro.graph import diamond
    >>> result = compute_reliability(diamond(), "s", "t", 1)
    >>> 0.0 < result.value < 1.0
    True
    """
    if demand is None:
        if source is None or sink is None or rate is None:
            raise ReproError(
                "provide either demand= or the (source, sink, rate) triple"
            )
        demand = FlowDemand(source, sink, rate)
    elif (source, sink, rate) != (None, None, None):
        raise ReproError("pass demand= or the positional triple, not both")
    demand.validate_against(net)

    result = _dispatch(net, demand, method, options)
    recorder = current_recorder()
    if recorder is not None:
        # The phase accounting of the trace so far (for a recorder
        # installed around exactly this call: this call's phases) —
        # benches and dashboards read it off the result directly.
        result.details["obs"] = phase_summary(recorder)
    return result


def is_coalescible(method: str | None) -> bool:
    """Whether a served query with ``method`` may join a coalesced batch.

    The daemon routes everything else (explicit naive, factoring,
    Monte-Carlo, ...) through :func:`dispatch_query` individually.
    """
    return method is None or method in COALESCIBLE_METHODS


def dispatch_query(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    method: str | None = None,
    **options: Any,
) -> ReliabilityResult | EstimateResult:
    """Engine dispatch for one served query.

    The per-query back door of the serving daemon: queries that cannot
    ride a coalesced sweep batch — an explicit non-bottleneck method, or
    a topology with no admissible bottleneck cut — are answered here,
    through exactly the same dispatch chain as the CLI's ``repro
    compute`` (so served values stay pinned to the pointwise path).
    """
    return compute_reliability(
        net, demand=demand, method=method if method is not None else "auto", **options
    )


def _dispatch(
    net: FlowNetwork,
    demand: FlowDemand,
    method: str,
    options: dict[str, Any],
) -> ReliabilityResult | EstimateResult:
    if method == "naive":
        return naive_reliability(net, demand, **options)
    if method == "naive-parallel":
        from repro.core.parallel import parallel_naive_reliability

        return parallel_naive_reliability(net, demand, **options)
    if method == "bottleneck":
        return bottleneck_reliability(net, demand, **options)
    if method == "bridge":
        return bridge_reliability(net, demand, **options)
    if method == "factoring":
        return factoring_reliability(net, demand, **options)
    if method == "series-parallel":
        from repro.core.reductions import series_parallel_reliability

        return series_parallel_reliability(net, demand, **options)
    if method == "frontier":
        from repro.core.frontier import frontier_reliability

        return frontier_reliability(net, demand, **options)
    if method == "frontier-directed":
        from repro.core.frontier import directed_frontier_reliability

        return directed_frontier_reliability(net, demand, **options)
    if method == "minpaths":
        from repro.core.paths import minpath_reliability

        return minpath_reliability(net, demand, **options)
    if method == "montecarlo":
        return montecarlo_reliability(net, demand, **options)
    if method == "montecarlo-stratified":
        from repro.core.stratified import stratified_montecarlo_reliability

        return stratified_montecarlo_reliability(net, demand, **options)
    if method == "rare":
        from repro.core.rare import rare_reliability

        return rare_reliability(net, demand, **options)
    if method == "chain":
        cuts: Sequence[Sequence[int]] | None = options.pop("cuts", None)
        if cuts is None:
            raise ReproError("method='chain' requires cuts=[[...], ...]")
        return chain_reliability(net, demand, cuts, **options)
    if method != "auto":
        raise ReproError(
            f"unknown method {method!r}; available: {available_methods()}"
        )

    # --- auto dispatch -------------------------------------------------
    solver = options.get("solver")
    workers = options.get("workers")
    incremental = options.get("incremental")
    block_bits = options.get("block_bits")
    cache = options.get("cache")
    try:
        split = find_bottleneck(
            net, demand.source, demand.sink, max_size=options.get("max_cut_size", 3)
        )
    except Exception:
        split = None
    if split is not None:
        side = max(len(split.source_side.link_map), len(split.sink_side.link_map))
        if side <= _AUTO_SIDE_BITS:
            try:
                return bottleneck_reliability(
                    net,
                    demand,
                    cut=split.cut,
                    solver=solver,
                    workers=workers,
                    incremental=incremental,
                    block_bits=block_bits,
                    cache=cache,
                )
            except DecompositionError:
                pass
    if net.num_links <= _AUTO_NAIVE_BITS:
        return naive_reliability(net, demand, solver=solver, incremental=incremental)
    if _AUTO_ESTIMATE_LINKS < net.num_links <= _AUTO_ESTIMATE_MAX_LINKS:
        # No enumerable bottleneck split and a state space past every
        # exact engine's guard: estimate instead of grinding factoring
        # through an exponential recursion.  Bounded relative error even
        # at five-nines availability, bit-replayable via seed=.
        from repro.core.rare import rare_reliability

        return rare_reliability(
            net,
            demand,
            solver=solver,
            incremental=incremental,
            seed=options.get("seed", 0),
            num_samples=options.get("num_samples"),
        )
    return factoring_reliability(net, demand, solver=solver)
