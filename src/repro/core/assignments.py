"""Sub-stream assignments over bottleneck links (paper §III-B).

An *assignment* distributes the ``d`` unit-rate sub-streams over the
``k`` bottleneck links: a tuple ``(a_1, ..., a_k)`` with
``sum a_i = d`` and ``0 <= a_i <= min(c(e_i), d)``.  Example 1 lists the
12 assignments for ``d = 5``, ``k = 3``, capacities ``(3, 3, 3)``.

Definition 1 introduces *support*: a subset ``E'`` of the bottleneck
links supports an assignment iff every positively-loaded link belongs
to ``E'``.  When the bottleneck survival pattern is ``E'``, exactly the
assignments supported by ``E'`` remain usable — the classification that
drives Eq. (3).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.exceptions import DemandError
from repro.probability.bitset import indices_from_mask
from repro.probability.enumeration import check_enumerable

__all__ = [
    "enumerate_assignments",
    "count_assignments",
    "support_mask",
    "supports",
    "supported_assignment_indices",
    "classify_by_support",
    "iter_support_classes",
    "describe_assignment",
]


def enumerate_assignments(
    capacities: Sequence[int], demand: int
) -> list[tuple[int, ...]]:
    """All assignments of ``demand`` sub-streams to links with the given
    capacities, in ascending lexicographic order (the order Example 1
    lists them in).

    Each component is capped at ``min(capacity, demand)``.  Returns an
    empty list when the total capped capacity cannot reach the demand.
    """
    if demand < 0:
        raise DemandError(f"demand must be non-negative, got {demand}")
    k = len(capacities)
    caps = [min(int(c), demand) for c in capacities]
    if any(c < 0 for c in caps):
        raise DemandError("capacities must be non-negative")
    results: list[tuple[int, ...]] = []
    if k == 0:
        return [()] if demand == 0 else []

    suffix_max = [0] * (k + 1)
    for i in range(k - 1, -1, -1):
        suffix_max[i] = suffix_max[i + 1] + caps[i]

    prefix: list[int] = []

    def recurse(position: int, remaining: int) -> None:
        if position == k:
            if remaining == 0:
                results.append(tuple(prefix))
            return
        if remaining > suffix_max[position]:
            return  # cannot place the rest even at full load
        low = 0
        high = min(caps[position], remaining)
        for value in range(low, high + 1):
            prefix.append(value)
            recurse(position + 1, remaining - value)
            prefix.pop()

    recurse(0, demand)
    return results


def count_assignments(capacities: Sequence[int], demand: int) -> int:
    """``|D|`` without materialising the list (DP over links).

    Equals ``len(enumerate_assignments(capacities, demand))``; the paper
    bounds it by ``d^k``.
    """
    caps = [min(int(c), demand) for c in capacities]
    counts = [0] * (demand + 1)
    counts[0] = 1
    for c in caps:
        new = [0] * (demand + 1)
        for total in range(demand + 1):
            if counts[total] == 0:
                continue
            for value in range(0, min(c, demand - total) + 1):
                new[total + value] += counts[total]
        counts = new
    return counts[demand]


def support_mask(assignment: Sequence[int]) -> int:
    """Bitmask of positively-loaded positions (the support of Def. 1)."""
    mask = 0
    for i, value in enumerate(assignment):
        if value < 0:
            raise DemandError(f"assignment components must be non-negative, got {value}")
        if value > 0:
            mask |= 1 << i
    return mask


def supports(subset_mask: int, assignment: Sequence[int]) -> bool:
    """Whether the bottleneck subset ``subset_mask`` supports the
    assignment (every positive component's link is in the subset)."""
    return support_mask(assignment) & ~subset_mask == 0


def supported_assignment_indices(
    assignments: Sequence[Sequence[int]], subset_mask: int
) -> list[int]:
    """Indices of assignments supported by ``subset_mask`` — the class
    ``D_{E'}`` of Example 5, as positions into ``assignments``."""
    return [
        j for j, assignment in enumerate(assignments) if supports(subset_mask, assignment)
    ]


def classify_by_support(
    assignments: Sequence[Sequence[int]], num_links: int
) -> dict[int, tuple[int, ...]]:
    """``D_{E'}`` for every one of the ``2^k`` bottleneck subsets.

    Keys are subset bitmasks; values are tuples of assignment indices.
    Matches Example 5: the full set supports everything, subsets support
    exactly the assignments whose positive components they cover, and
    (in that example) every subset of size <= 1 supports nothing.
    """
    check_enumerable(num_links)
    supports_of = [support_mask(a) for a in assignments]
    table: dict[int, tuple[int, ...]] = {}
    for subset in range(1 << num_links):  # repro: noqa[RR109] pure bitmask arithmetic, no solver behind each entry
        table[subset] = tuple(
            j for j, s in enumerate(supports_of) if s & ~subset == 0
        )
    return table


def iter_support_classes(
    assignments: Sequence[Sequence[int]], num_links: int
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Yield ``(subset_mask, supported indices)`` pairs lazily."""
    check_enumerable(num_links)
    supports_of = [support_mask(a) for a in assignments]
    for subset in range(1 << num_links):  # repro: noqa[RR109] pure bitmask arithmetic, no solver behind each entry
        yield subset, tuple(j for j, s in enumerate(supports_of) if s & ~subset == 0)


def describe_assignment(assignment: Sequence[int]) -> str:
    """Human-readable rendering, e.g. ``(1, 2, 0) over {e1, e2}``."""
    support = indices_from_mask(support_mask(assignment))
    links = ", ".join(f"e{i + 1}" for i in support) or "-"
    return f"{tuple(assignment)} over {{{links}}}"
