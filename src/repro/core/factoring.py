"""Factoring (conditioning) — the classic exact baseline.

Condition on one undecided link ``e``:

    R = (1 − p(e)) · R[e alive] + p(e) · R[e dead]

and recurse, short-circuiting whole subtrees:

* if the demand is infeasible even with **every** undecided link alive,
  the subtree contributes 0;
* if the demand is feasible with **only** the decided-alive links, every
  completion is feasible (monotonicity) and the subtree contributes 1.

With the max-flow feasibility oracle those two tests make factoring
dramatically cheaper than full enumeration on most instances while
remaining exact on *any* network — no bottleneck structure required.
It is the strongest general-purpose baseline in the library (ablation
A4) and the default for networks without a usable bottleneck cut.

Branching heuristic: prefer links that carry flow in the optimistic
max-flow solution — deciding them actually changes feasibility, whereas
branching on an unused link just doubles the tree.
"""

from __future__ import annotations

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.result import ReliabilityResult
from repro.exceptions import IntractableError
from repro.flow.base import MaxFlowSolver
from repro.graph.network import FlowNetwork

__all__ = ["factoring_reliability"]

#: Safety valve: refuse instances that could recurse deeper than this.
MAX_FACTORING_LINKS = 40


def factoring_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    solver: str | MaxFlowSolver | None = None,
    use_flow_heuristic: bool = True,
) -> ReliabilityResult:
    """Exact reliability by conditioning with feasibility short-circuits.

    ``use_flow_heuristic`` toggles the carried-flow branching rule
    (disabled it falls back to lowest-index-first, which the A4
    ablation shows is markedly worse).
    """
    demand.validate_against(net)
    m = net.num_links
    if m > MAX_FACTORING_LINKS:
        raise IntractableError(
            f"factoring over {m} links may branch 2^{m} times",
            required=m,
            limit=MAX_FACTORING_LINKS,
        )
    oracle = FeasibilityOracle(net, demand.source, demand.sink, demand.rate, solver=solver)
    probabilities = net.failure_probabilities()
    # Links that never fail are decided alive up front — branching on
    # them would double the tree for a zero-probability branch.
    sure_mask = 0
    for index, p in enumerate(probabilities):
        if p == 0.0:
            sure_mask |= 1 << index
    full_mask = (1 << m) - 1
    nodes_visited = 0

    def recurse(alive: int, undecided: int) -> float:
        """Reliability conditioned on links outside ``alive | undecided``
        being dead and links in ``alive`` being up."""
        nonlocal nodes_visited
        nodes_visited += 1
        if not oracle.feasible(alive | undecided):
            return 0.0
        if oracle.feasible(alive):
            return 1.0
        # Both tests failed, so at least one undecided link matters.
        branch = -1
        if use_flow_heuristic:
            for index in oracle.used_links(alive | undecided, limit=demand.rate):
                if (undecided >> index) & 1:
                    branch = index
                    break
        if branch < 0:
            branch = (undecided & -undecided).bit_length() - 1
        bit = 1 << branch
        rest = undecided & ~bit
        p = probabilities[branch]
        return (1.0 - p) * recurse(alive | bit, rest) + p * recurse(alive, rest)

    value = recurse(sure_mask, full_mask & ~sure_mask)
    return ReliabilityResult(
        value=value,
        method="factoring",
        flow_calls=oracle.calls,
        configurations=nodes_visited,
        details={
            "branch_nodes": nodes_visited,
            "flow_heuristic": bool(use_flow_heuristic),
        },
    )
