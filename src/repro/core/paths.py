"""Minimal-path methods for unit demands.

The oldest exact approach in reliability engineering: enumerate the
*minimal paths* (inclusion-minimal link sets whose joint survival
delivers the demand), then evaluate
``R = P(at least one minimal path fully alive)`` by inclusion–exclusion
— intersections of "path alive" events are just products over link
unions, so the expansion is exact for any overlap structure.

For ``d = 1`` the minimal paths are exactly the simple s-t paths of the
(positive-capacity) network, enumerated by DFS.  The expansion has
``2^{#paths}`` terms, so this method shines on sparse networks with few
routes and is guarded otherwise; its role in the library is as yet
another *independent* exact oracle (it never touches max-flow at all)
for the cross-validation suite, plus the path census itself
(`minimal_paths`) which the P2P tooling reuses.
"""

from __future__ import annotations

from repro.core.demand import FlowDemand
from repro.core.result import ReliabilityResult
from repro.core.summation import prob_fsum
from repro.exceptions import IntractableError, ReproError
from repro.graph.network import FlowNetwork, Node
from repro.probability.bitset import parity_array

import numpy as np

__all__ = ["minimal_paths", "minpath_reliability", "MAX_MINPATHS"]

#: Inclusion–exclusion over more paths than this is refused.
MAX_MINPATHS = 20


def minimal_paths(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    max_paths: int | None = None,
) -> list[tuple[int, ...]]:
    """All simple s-t paths, as tuples of link indices.

    Direction-respecting; zero-capacity links and self-loops are
    excluded.  Paths are emitted in DFS order (deterministic: links are
    explored in index order).  ``max_paths`` aborts the enumeration
    with :class:`IntractableError` once exceeded.
    """
    if not net.has_node(source) or not net.has_node(sink):
        raise ReproError("both terminals must be in the network")
    result: list[tuple[int, ...]] = []
    path_links: list[int] = []
    on_path: set[Node] = {source}

    def outgoing(node: Node):
        for link in sorted(net.out_links(node), key=lambda l: l.index):
            if link.capacity < 1 or link.tail == link.head:
                continue
            yield link

    def dfs(node: Node) -> None:
        if node == sink:
            result.append(tuple(path_links))
            if max_paths is not None and len(result) > max_paths:
                raise IntractableError(
                    f"more than {max_paths} simple paths",
                    required=len(result),
                    limit=max_paths,
                )
            return
        for link in outgoing(node):
            other = link.head if link.tail == node else link.tail
            if other in on_path:
                continue
            on_path.add(other)
            path_links.append(link.index)
            dfs(other)
            path_links.pop()
            on_path.discard(other)

    dfs(source)
    return result


def minpath_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    max_paths: int = MAX_MINPATHS,
) -> ReliabilityResult:
    """Exact unit-demand reliability by inclusion–exclusion over the
    minimal paths.

    Requires ``demand.rate == 1`` (for higher demands the minimal
    "route sets" are unions of paths, a different lattice) and at most
    ``max_paths`` simple paths.  Completely independent of the max-flow
    machinery — its agreement with the other five exact methods is the
    strongest cross-validation signal in the suite.
    """
    demand.validate_against(net)
    if demand.rate != 1:
        raise ReproError("minpath inclusion-exclusion handles unit demands only")
    paths = minimal_paths(net, demand.source, demand.sink, max_paths=max_paths)
    n = len(paths)
    if n > MAX_MINPATHS:
        raise IntractableError(
            f"inclusion-exclusion over {n} paths needs 2^{n} terms",
            required=n,
            limit=MAX_MINPATHS,
        )
    if n == 0:
        return ReliabilityResult(
            value=0.0, method="minpaths", details={"num_paths": 0}
        )
    availability = [link.availability for link in net.links()]
    path_masks = []
    for path in paths:
        mask = 0
        for index in path:
            mask |= 1 << index
        path_masks.append(mask)

    # Inclusion–exclusion: for each subset of paths, the probability
    # that ALL of them are alive is the product over the union of links.
    # Signs alternate, so the terms are fsum'd to keep the cancellation
    # exact.
    signs = -parity_array(n).astype(np.float64)
    terms: list[float] = []
    for subset in range(1, 1 << n):
        union = 0
        bits = subset
        while bits:
            low = bits & -bits
            union |= path_masks[low.bit_length() - 1]
            bits ^= low
        p = 1.0
        link_bits = union
        while link_bits:
            low = link_bits & -link_bits
            p *= availability[low.bit_length() - 1]
            link_bits ^= low
        terms.append(float(signs[subset]) * p)
    return ReliabilityResult(
        value=prob_fsum(terms),
        method="minpaths",
        configurations=1 << n,
        details={"num_paths": n, "longest_path": max(len(p) for p in paths)},
    )
