"""Result objects shared by every reliability algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ReproValueError

__all__ = ["ReliabilityResult", "EstimateResult"]


@dataclass(frozen=True)
class ReliabilityResult:
    """Outcome of an exact reliability computation.

    Attributes
    ----------
    value:
        The reliability, a probability in ``[0, 1]``.
    method:
        Which algorithm produced it (``"naive"``, ``"bottleneck"``, ...).
    flow_calls:
        Number of max-flow solver invocations performed — the cost
        measure the paper counts (``|D| 2^{|E_s|} + |D| 2^{|E_t|}`` for
        the bottleneck algorithm vs ``2^{|E|}`` naive).
    configurations:
        Number of failure configurations whose probability entered the
        sum.
    details:
        Algorithm-specific extras (chosen cut, achieved alpha,
        assignment counts, pruning statistics, ...).
    """

    value: float
    method: str
    flow_calls: int = 0
    configurations: int = 0
    details: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Guard against accumulated floating error drifting outside
        # [0, 1]; clamp tiny overshoots, reject real ones.
        v = self.value
        if -1e-9 <= v < 0.0:
            object.__setattr__(self, "value", 0.0)
        elif 1.0 < v <= 1.0 + 1e-9:
            object.__setattr__(self, "value", 1.0)
        elif not (0.0 <= v <= 1.0):
            raise ReproValueError(f"reliability {v} outside [0, 1]")

    def __float__(self) -> float:
        return self.value


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of a Monte-Carlo reliability estimate.

    ``low``/``high`` bound a confidence interval at the requested
    ``confidence`` level (Wilson score interval on the hit ratio).
    """

    value: float
    low: float
    high: float
    confidence: float
    num_samples: int
    hits: int
    method: str = "montecarlo"
    details: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:
        return self.value

    @property
    def half_width(self) -> float:
        """Half the confidence-interval width."""
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.low <= value <= self.high
