"""Series–parallel reductions for unit-rate demands.

For ``d = 1`` the flow-reliability problem degenerates to classic
two-terminal reliability, where three local reductions are exact:

* **parallel**: links with the same endpoints and usable direction
  merge into one link whose failure probability is the product
  (either survivor carries the single sub-stream);
* **series**: a non-terminal node whose only incidents are one usable
  inbound and one usable outbound link contracts into a single link
  whose availability is the product;
* **prune**: self-loops, links into the source / out of the sink, and
  dangling chains that cannot lie on any s-t path are deleted outright
  (their state cannot affect delivery).

Applied to exhaustion this solves series-parallel networks **in
polynomial time** — no enumeration at all — and shrinks everything
else before an exponential method runs.  The reductions are *not*
valid for ``d >= 2`` (capacities add in parallel and bottleneck in
series, so failure states are no longer 0/1 per merged link);
:func:`reduce_for_unit_demand` therefore refuses demands above 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.demand import FlowDemand
from repro.core.result import ReliabilityResult
from repro.exceptions import ReproError
from repro.graph.connectivity import directed_reachable_from
from repro.graph.network import FlowNetwork, Node

__all__ = ["ReductionReport", "reduce_for_unit_demand", "series_parallel_reliability"]


@dataclass(frozen=True)
class ReductionReport:
    """Outcome of :func:`reduce_for_unit_demand`.

    ``network`` is the reduced network (new link indices).  When it has
    shrunk to a single s-t link, ``fully_reduced`` is true and the
    reliability is just that link's availability.
    """

    network: FlowNetwork
    source: Node
    sink: Node
    original_links: int
    series_steps: int
    parallel_steps: int
    pruned_links: int

    @property
    def fully_reduced(self) -> bool:
        """True when reduction reached a closed form: a single s-t link
        (reliability = its availability) or no link at all
        (reliability = 0).  The prune pass guarantees every surviving
        link lies on an s-t path, so one link must join the terminals."""
        return self.network.num_links <= 1


@dataclass
class _Edge:
    """Mutable working edge: undirected iff ``directed`` is False."""

    tail: Node
    head: Node
    availability: float
    directed: bool


def _prune_useless(edges: list[_Edge], source: Node, sink: Node) -> int:
    """Drop edges that cannot lie on any s-t path (forward x backward
    reachability on the current working graph)."""
    net = FlowNetwork()
    net.add_node(source)
    net.add_node(sink)
    for e in edges:
        net.add_link(e.tail, e.head, 1, 0.0, directed=e.directed)
    forward = directed_reachable_from(net, source)
    # backward reachability: reverse every directed edge
    rev = FlowNetwork()
    rev.add_node(source)
    rev.add_node(sink)
    for e in edges:
        rev.add_link(e.head, e.tail, 1, 0.0, directed=e.directed)
    backward = directed_reachable_from(rev, sink)
    kept = [
        e
        for e in edges
        if e.tail != e.head
        and (
            (e.tail in forward and e.head in backward)
            or (not e.directed and e.head in forward and e.tail in backward)
        )
    ]
    dropped = len(edges) - len(kept)
    edges[:] = kept
    return dropped


def reduce_for_unit_demand(
    net: FlowNetwork, demand: FlowDemand
) -> ReductionReport:
    """Exhaustively apply prune / parallel / series reductions.

    Only meaningful for ``demand.rate == 1``; anything else raises
    :class:`ReproError`.  Zero-capacity links are treated as absent.
    """
    if demand.rate != 1:
        raise ReproError("series-parallel reductions are only exact for d = 1")
    demand.validate_against(net)
    source, sink = demand.source, demand.sink
    edges = [
        _Edge(l.tail, l.head, l.availability, l.directed)
        for l in net.links()
        if l.capacity >= 1
    ]
    series_steps = 0
    parallel_steps = 0
    pruned = 0

    changed = True
    while changed:
        changed = False
        pruned += _prune_useless(edges, source, sink)

        # Parallel merge: group by unordered endpoints + direction class.
        groups: dict[tuple, list[int]] = {}
        for i, e in enumerate(edges):
            if e.directed:
                key = ("d", e.tail, e.head)
            else:
                # Undirected parallels merge regardless of stored
                # orientation; a directed/undirected mixed pair must NOT
                # merge (the undirected one also covers the reverse
                # direction), hence the distinct key class.
                key = ("u", frozenset((e.tail, e.head)))
            groups.setdefault(key, []).append(i)
        to_delete: set[int] = set()
        for key, members in groups.items():
            if len(members) < 2:
                continue
            keep = members[0]
            fail = 1.0
            for i in members:
                fail *= 1.0 - edges[i].availability
            edges[keep].availability = 1.0 - fail
            to_delete.update(members[1:])
            parallel_steps += len(members) - 1
            changed = True
        if to_delete:
            edges[:] = [e for i, e in enumerate(edges) if i not in to_delete]

        # Series contraction: non-terminal node with exactly two incident
        # edges forming a through-path.
        incident: dict[Node, list[int]] = {}
        for i, e in enumerate(edges):
            incident.setdefault(e.tail, []).append(i)
            if e.head != e.tail:
                incident.setdefault(e.head, []).append(i)
        for node, ids in incident.items():
            if node in (source, sink) or len(ids) != 2:
                continue
            a, b = edges[ids[0]], edges[ids[1]]
            x = a.tail if a.head == node else a.head
            y = b.tail if b.head == node else b.head
            if x == node or y == node:
                continue  # self-loop remnants; the prune pass removes them
            # Can traffic traverse x -> node via a, and node -> y via b?
            a_fwd = (not a.directed) or (a.tail == x and a.head == node)
            b_fwd = (not b.directed) or (b.tail == node and b.head == y)
            # ... and the reverse direction y -> node -> x?
            a_bwd = (not a.directed) or (a.tail == node and a.head == x)
            b_bwd = (not b.directed) or (b.tail == y and b.head == node)
            merged: _Edge | None = None
            availability = a.availability * b.availability
            if not a.directed and not b.directed:
                merged = _Edge(x, y, availability, directed=False)
            elif a_fwd and b_fwd:
                merged = _Edge(x, y, availability, directed=True)
            elif a_bwd and b_bwd:
                merged = _Edge(y, x, availability, directed=True)
            if merged is None:
                continue  # in-in or out-out: dead through-node, prune handles it
            remaining = [e for i, e in enumerate(edges) if i not in (ids[0], ids[1])]
            remaining.append(merged)
            edges[:] = remaining
            series_steps += 1
            changed = True
            break  # incident map is stale; restart the pass

    reduced = FlowNetwork(name=f"{net.name}|reduced")
    reduced.add_node(source)
    reduced.add_node(sink)
    for e in edges:
        p = min(max(1.0 - e.availability, 0.0), 1.0 - 1e-15)
        reduced.add_link(e.tail, e.head, 1, p, directed=e.directed)
    return ReductionReport(
        network=reduced,
        source=source,
        sink=sink,
        original_links=net.num_links,
        series_steps=series_steps,
        parallel_steps=parallel_steps,
        pruned_links=pruned,
    )


def series_parallel_reliability(
    net: FlowNetwork, demand: FlowDemand
) -> ReliabilityResult:
    """Polynomial-time exact reliability for fully-reducible ``d = 1``
    instances.

    Raises :class:`ReproError` when the reductions leave more than one
    link (the network is not series-parallel between the terminals) —
    use a general method then, ideally on the reduced network.
    """
    report = reduce_for_unit_demand(net, demand)
    reduced = report.network
    if reduced.num_links == 0:
        return ReliabilityResult(
            value=0.0,
            method="series-parallel",
            details={"reason": "no s-t path survives the reductions"},
        )
    if reduced.num_links > 1:
        raise ReproError(
            f"network is not series-parallel between the terminals "
            f"({reduced.num_links} links remain after reduction)"
        )
    link = reduced.link(0)
    return ReliabilityResult(
        value=link.availability,
        method="series-parallel",
        details={
            "series_steps": report.series_steps,
            "parallel_steps": report.parallel_steps,
            "pruned_links": report.pruned_links,
            "original_links": report.original_links,
        },
    )
