"""Share-nothing sharded realization-array builds.

The chunked engine (:mod:`repro.core.engine`) parallelises one build by
slicing each side's lattice and shipping chunk results back through a
process pool — workers and parent share a Python queue.  This module
parallelises the *sweep* build with no shared Python state at all: the
content-addressed :class:`~repro.core.sweep.ArrayCache` **disk tier is
the work queue**.

The unit of work is one realization *column* — one ``(side,
assignment)`` pair's bool vector over the side lattice, exactly the
unit the cache stores.  Every shard worker runs the same loop over the
same deterministically-ordered column list (rotated by its shard index
so shards start at different units):

1. **skip** — the column's ``.npy`` is already published;
2. **claim** — atomically create ``<key>.claim``
   (:meth:`~repro.core.sweep.ArrayCache.try_claim`, ``O_CREAT|O_EXCL``:
   the filesystem arbitrates, exactly one winner); losers move on;
3. **build** — fill the column through the shared chunk kernel
   (:func:`repro.core.engine._build_chunk_masks`, scalar or
   bit-parallel per ``block_bits``) and **publish** it as an atomic
   ``.npy`` (temp file + ``os.replace``), then drop the claim.

Workers exchange nothing but cache files, so any worker count — and
any number of *independent CLI runs* against the same directory —
composes.  Claims are advisory work-distribution only: a stale claim
from a crashed worker never blocks correctness, because the parent's
final warm sweep builds whatever is still missing itself and
publication is idempotent (every build path produces bit-identical
columns; the property suites pin this).

Observability follows the engine discipline: workers count nothing
in-process, self-time through :func:`repro.obs.wallclock`, and report
totals the parent replays under one ``shard.build`` span per shard
(``shard_claims``, ``flow_solves``, …) — so summing worker telemetry
streams reproduces the parent's replayed totals exactly and
``flow_solves`` keeps partitioning across spans.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.assignments import enumerate_assignments
from repro.core.demand import FlowDemand
from repro.core.engine import _build_chunk_masks, _solver_token, run_chunked
from repro.core.sweep import (
    ArrayCache,
    SweepResult,
    SweepSpec,
    _column_key,
    _resolve_split,
    compute_reliability_sweep,
    side_fingerprint,
)
from repro.exceptions import ReproValueError
from repro.flow.base import MaxFlowSolver
from repro.flow.incremental import resolve_incremental
from repro.graph.io import from_dict, to_dict
from repro.graph.network import FlowNetwork
from repro.obs.recorder import (
    ARRAY_ENTRIES_BUILT,
    AUGMENTING_PATHS_SAVED,
    BLOCK_SCREENED,
    FLOW_REPAIRS,
    FLOW_SOLVES,
    SCREENED_SOLVES,
    SHARD_CLAIMS,
    count,
    span,
    wallclock,
)
from repro.obs.telemetry import current_spool_dir, spool_chunk_events

__all__ = ["plan_columns", "sharded_sweep"]


def plan_columns(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    sweep: SweepSpec,
    cut: Sequence[int] | None = None,
    max_cut_size: int = 3,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """The sharded build's work list: ``(sides, units)``.

    ``sides`` holds one spawn-safe descriptor per split side (network
    dict, role, terminal, ports); ``units`` one entry per distinct
    realization column the sweep will need — ``(side index, assignment,
    demand, cache key)`` — in deterministic order, deduplicated by key
    (demand sweeps share columns across rates when assignment tuples
    repeat).
    """
    split = _resolve_split(net, demand, cut, max_cut_size)
    cut_links = split.cut
    capacities = [net.link(i).capacity for i in cut_links]
    rates = list(sweep.values) if sweep.kind == "demand" else [demand.rate]
    sides = [
        {
            "net": to_dict(split.source_side.network),
            "role": "source",
            "terminal": demand.source,
            "ports": tuple(split.source_ports),
            "digest": side_fingerprint(
                split.source_side.network,
                role="source",
                terminal=demand.source,
                ports=split.source_ports,
            ),
        },
        {
            "net": to_dict(split.sink_side.network),
            "role": "sink",
            "terminal": demand.sink,
            "ports": tuple(split.sink_ports),
            "digest": side_fingerprint(
                split.sink_side.network,
                role="sink",
                terminal=demand.sink,
                ports=split.sink_ports,
            ),
        },
    ]
    units: list[dict[str, Any]] = []
    seen: set[str] = set()
    for rate in rates:
        for assignment in enumerate_assignments(capacities, int(rate)):
            for index, side in enumerate(sides):
                key = _column_key(side["digest"], assignment)
                if key in seen:
                    continue
                seen.add(key)
                units.append(
                    {
                        "side": index,
                        "assignment": tuple(int(a) for a in assignment),
                        "demand": int(rate),
                        "key": key,
                    }
                )
    return sides, units


def _shard_worker(payload: dict[str, Any]) -> dict[str, Any]:
    """One shard's claim-build-publish loop (spawn-safe entry point).

    Walks the shared unit list rotated by the shard index, claims what
    it can, builds each won column through the chunk kernel (counting
    nothing in-process — the parent replays the returned totals), and
    publishes via the cache's atomic disk tier.  Crashing mid-column at
    worst leaves a stale ``.claim``, which no reader ever waits on.
    """
    start = wallclock()
    cache = ArrayCache(payload["cache_dir"])
    sides = payload["sides"]
    nets: list[FlowNetwork | None] = [None] * len(sides)
    units = payload["units"]
    shard = int(payload["shard"])
    rotated = units[shard:] + units[:shard]
    claims = flow_calls = screened = block_screened = 0
    repairs = paths_saved = entries = 0
    for unit in rotated:
        key = unit["key"]
        if cache.contains(key) or not cache.try_claim(key):
            continue
        try:
            index = unit["side"]
            net = nets[index]
            if net is None:
                net = nets[index] = from_dict(sides[index]["net"])
            masks, calls, scr, blk, rep, saved = _build_chunk_masks(
                net,
                role=sides[index]["role"],
                terminal=sides[index]["terminal"],
                ports=sides[index]["ports"],
                assignments=[unit["assignment"]],
                demand=unit["demand"],
                solver=payload["solver"],
                prune=payload["prune"],
                screen=payload["screen"],
                low_bits=net.num_links,
                high_pattern=0,
                incremental=payload["incremental"],
                block_bits=payload["block_bits"],
            )
            cache.put(key, (masks & 1).astype(bool))
        finally:
            cache.release_claim(key)
        claims += 1
        flow_calls += calls
        screened += scr
        block_screened += blk
        repairs += rep
        paths_saved += saved
        entries += len(masks)
    result = {
        "shard": shard,
        "claims": claims,
        "flow_calls": flow_calls,
        "screened": screened,
        "block_screened": block_screened,
        "repairs": repairs,
        "paths_saved": paths_saved,
        "entries": entries,
        "seconds": wallclock() - start,
    }
    spool_dir = payload.get("spool_dir")
    if spool_dir:
        # Mirror the parent's replay exactly (same names, same
        # zero-suppression) so summing the worker streams reproduces
        # the replayed totals bit-for-bit, like the engine's chunks.
        counters: dict[str, int | float] = {
            SHARD_CLAIMS: claims,
            FLOW_SOLVES: flow_calls,
            SCREENED_SOLVES: screened,
            ARRAY_ENTRIES_BUILT: entries,
        }
        if block_screened:
            counters[BLOCK_SCREENED] = block_screened
        if repairs:
            counters[FLOW_REPAIRS] = repairs
        if paths_saved:
            counters[AUGMENTING_PATHS_SAVED] = paths_saved
        spool_chunk_events(
            spool_dir,
            "shard.build",
            attrs={"shard": shard},
            seconds=result["seconds"],
            counters=counters,
        )
    return result


def sharded_sweep(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    sweep: SweepSpec,
    shards: int,
    cache_dir: str,
    cut: Sequence[int] | None = None,
    solver: str | MaxFlowSolver | None = None,
    strategy: str = "auto",
    prune: bool = True,
    max_cut_size: int = 3,
    screen: bool = True,
    incremental: bool | None = None,
    block_bits: int | None = None,
) -> SweepResult:
    """A :func:`~repro.core.sweep.compute_reliability_sweep` built by shards.

    Phase one fans the sweep's column work list out to ``shards``
    processes that coordinate *only* through ``cache_dir`` (claim
    files + atomic ``.npy`` publication); phase two runs the ordinary
    sweep against the now-warm cache in the parent — which also builds
    any column a crashed shard left behind, so the result never depends
    on every shard surviving.  Values and ``details`` are bit-identical
    to the unsharded sweep at every shard count (the columns are ground
    truth); a repeat run against the same directory performs zero
    max-flow solves.
    """
    if shards < 1:
        raise ReproValueError(f"shards must be >= 1, got {shards}")
    sides, units = plan_columns(
        net, demand, sweep=sweep, cut=cut, max_cut_size=max_cut_size
    )
    use_incremental = resolve_incremental(solver, incremental)
    spool = current_spool_dir()
    payloads = [
        {
            "shard": shard,
            "spool_dir": str(spool) if spool is not None else None,
            "cache_dir": str(cache_dir),
            "sides": sides,
            "units": units,
            "solver": _solver_token(solver),
            "prune": prune,
            "screen": screen,
            "incremental": use_incremental,
            "block_bits": block_bits,
        }
        for shard in range(shards)
    ]
    with span("sweep.run", kind="sharded", points=len(sweep)):
        results = run_chunked(
            _shard_worker, [(p,) for p in payloads], workers=shards
        )
        for r in sorted(results, key=lambda r: int(r["shard"])):
            with span(
                "shard.build",
                shard=int(r["shard"]),
                columns=int(r["claims"]),
                worker_seconds=float(r["seconds"]),
            ):
                count(SHARD_CLAIMS, int(r["claims"]))
                count(FLOW_SOLVES, int(r["flow_calls"]))
                count(SCREENED_SOLVES, int(r["screened"]))
                count(ARRAY_ENTRIES_BUILT, int(r["entries"]))
                if r.get("block_screened"):
                    count(BLOCK_SCREENED, int(r["block_screened"]))
                if r.get("repairs"):
                    count(FLOW_REPAIRS, int(r["repairs"]))
                if r.get("paths_saved"):
                    count(AUGMENTING_PATHS_SAVED, int(r["paths_saved"]))
        swept = compute_reliability_sweep(
            net,
            demand,
            sweep=sweep,
            cut=cut,
            solver=solver,
            strategy=strategy,
            prune=prune,
            max_cut_size=max_cut_size,
            workers=None,
            screen=screen,
            incremental=incremental,
            block_bits=block_bits,
            cache=ArrayCache(cache_dir),
        )
    built = sum(int(r["flow_calls"]) for r in results)
    return SweepResult(
        kind=swept.kind,
        xs=swept.xs,
        results=swept.results,
        flow_calls=built + swept.flow_calls,
        cache_stats=swept.cache_stats,
    )
