"""Frontier-based exact reliability for unit demands (undirected).

A third exact paradigm besides enumeration and cut decomposition: sweep
the links in a fixed order and maintain a distribution over *frontier
states* — the partition of the currently-boundary nodes into connected
components of the alive prefix, with flags marking the components that
contain the source / sink (the classic Sekine–Imai "simpath"
construction behind BDD-based network reliability).

* Processing link ``e = {u, v}`` splits every state into a dead branch
  (weight × p) and an alive branch (weight × (1−p)) that merges the
  endpoints' components.  A merge joining the s-component to the
  t-component is a **success**: connectivity is monotone, so the branch
  weight is banked immediately.
* A node leaving the frontier (its last link processed) seals its
  component; a sealed component holding exactly one terminal can never
  connect, killing the state; a sealed unflagged component is simply
  dropped.

The running time is ``O(m · S)`` where ``S`` is the number of distinct
frontier states — bounded by the Bell number of the *frontier width* of
the link order, not by ``2^m``.  Ladders, grids-of-bounded-height and
long P2P relay chains have constant width, so this computes exact
reliabilities for networks with hundreds of links where enumeration is
hopeless (benchmark X4).

Two variants live here:

* :func:`frontier_reliability` — partition states; undirected links
  only (connectivity is an equivalence relation there), the cheaper
  construction;
* :func:`directed_frontier_reliability` — reachability-*relation*
  states (bit matrices); handles directed and mixed networks at a
  larger per-state cost.

Both are restricted to unit demands (checked).
"""

from __future__ import annotations

from collections import deque

from repro.core.demand import FlowDemand
from repro.core.result import ReliabilityResult
from repro.core.summation import KahanSum
from repro.exceptions import ReproError
from repro.graph.network import FlowNetwork, Node

__all__ = ["frontier_reliability", "directed_frontier_reliability", "bfs_link_order", "frontier_width"]

_S_FLAG = 1
_T_FLAG = 2


def bfs_link_order(net: FlowNetwork, source: Node) -> list[int]:
    """Links ordered by BFS discovery from ``source``.

    Keeps each node's incident links close together in the sweep, which
    is what keeps the frontier (and hence the state count) small on
    elongated networks.  Links not reachable from the source come last
    (they cannot affect s-t delivery but still must be swept past).
    """
    order: list[int] = []
    seen_links: set[int] = set()
    seen_nodes: set[Node] = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for link in net.incident_links(node):
            if link.index in seen_links:
                continue
            seen_links.add(link.index)
            order.append(link.index)
            other = link.other_endpoint(node)
            if other not in seen_nodes:
                seen_nodes.add(other)
                queue.append(other)
    for link in net.links():
        if link.index not in seen_links:
            order.append(link.index)
    return order


def frontier_width(net: FlowNetwork, order: list[int]) -> int:
    """Maximum number of simultaneously-boundary nodes for an order."""
    first: dict[Node, int] = {}
    last: dict[Node, int] = {}
    for position, index in enumerate(order):
        link = net.link(index)
        for node in (link.tail, link.head):
            first.setdefault(node, position)
            last[node] = position
    width = 0
    active: set[Node] = set()
    for position, index in enumerate(order):
        link = net.link(index)
        for node in (link.tail, link.head):
            if first[node] == position:
                active.add(node)
        width = max(width, len(active))
        for node in (link.tail, link.head):
            if last[node] == position:
                active.discard(node)
    return width


def frontier_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    order: list[int] | None = None,
    max_states: int = 200_000,
) -> ReliabilityResult:
    """Exact unit-demand reliability by the frontier sweep.

    ``order`` overrides the default BFS link order.  ``max_states``
    guards against orders with huge frontiers (raises
    :class:`ReproError` when exceeded — try a better order or another
    method).
    """
    demand.validate_against(net)
    if demand.rate != 1:
        raise ReproError("the frontier method handles unit demands only")
    links = [l for l in net.links() if l.capacity >= 1 and l.tail != l.head]
    for link in links:
        if link.directed:
            raise ReproError(
                "the frontier method requires undirected links "
                f"(link {link.index} is directed)"
            )
    usable = {l.index for l in links}
    if order is None:
        order = [i for i in bfs_link_order(net, demand.source) if i in usable]
    else:
        order = [i for i in order if i in usable]
        if set(order) != usable:
            raise ReproError("order must cover every usable link exactly once")

    source, sink = demand.source, demand.sink
    first: dict[Node, int] = {}
    last: dict[Node, int] = {}
    for position, index in enumerate(order):
        link = net.link(index)
        for node in (link.tail, link.head):
            first.setdefault(node, position)
            last[node] = position
    if source not in first or sink not in first:
        return ReliabilityResult(
            value=0.0, method="frontier",
            details={"reason": "a terminal touches no usable link"},
        )

    # A state is (component id per frontier node, flags per component),
    # canonically relabelled; the frontier node list itself is global
    # per sweep position, so it lives outside the state keys.
    frontier: list[Node] = []
    states: dict[tuple, float] = {((), ()): 1.0}
    success = KahanSum()
    peak_states = 1

    for position, index in enumerate(order):
        link = net.link(index)
        p_fail = link.failure_probability
        p_ok = 1.0 - p_fail

        entering = [
            n for n in (link.tail, link.head) if first[n] == position and n not in frontier
        ]
        # The two endpoints may be identical-first (both enter now).
        new_frontier = frontier + entering
        u_pos = new_frontier.index(link.tail)
        v_pos = new_frontier.index(link.head)
        leaving = [n for n in (link.tail, link.head) if last[n] == position]
        next_frontier = [n for n in new_frontier if n not in leaving]
        keep_positions = [i for i, n in enumerate(new_frontier) if n not in leaving]

        new_states: dict[tuple, float] = {}

        def emit(ids: list[int], flag_list: list[int], weight: float) -> None:
            nonlocal success
            # Seal components losing their last frontier node.
            kept_comp_ids = {ids[i] for i in keep_positions}
            for c, fl in enumerate(flag_list):
                if c in kept_comp_ids or fl == 0:
                    continue
                # sealed component holding a terminal: the terminal can
                # never connect to anything again -> dead state
                return
            # Re-canonicalise over the surviving frontier.
            relabel: dict[int, int] = {}
            out_ids = []
            for i in keep_positions:
                c = ids[i]
                if c not in relabel:
                    relabel[c] = len(relabel)
                out_ids.append(relabel[c])
            out_flags = [0] * len(relabel)
            for old, new in relabel.items():
                out_flags[new] = flag_list[old]
            key = (tuple(out_ids), tuple(out_flags))
            new_states[key] = new_states.get(key, 0.0) + weight

        for (ids_t, flags_t), weight in states.items():
            ids = list(ids_t)
            flag_list = list(flags_t)
            # Entering nodes become fresh singleton components.
            for node in entering:
                c = len(flag_list)
                ids.append(c)
                fl = 0
                if node == source:
                    fl |= _S_FLAG
                if node == sink:
                    fl |= _T_FLAG
                flag_list.append(fl)

            cu, cv = ids[u_pos], ids[v_pos]

            # Dead branch.
            if p_fail > 0.0:
                emit(list(ids), list(flag_list), weight * p_fail)

            # Alive branch: merge cu and cv.
            if p_ok > 0.0:
                merged_flags = flag_list[cu] | flag_list[cv]
                if merged_flags == (_S_FLAG | _T_FLAG):
                    success.add(weight * p_ok)
                    continue
                if cu == cv:
                    emit(list(ids), list(flag_list), weight * p_ok)
                    continue
                keep, drop = (cu, cv) if cu < cv else (cv, cu)
                merged_ids = [keep if c == drop else c for c in ids]
                merged_flag_list = list(flag_list)
                merged_flag_list[keep] = merged_flags
                merged_flag_list[drop] = 0
                emit(merged_ids, merged_flag_list, weight * p_ok)

        states = new_states
        frontier = next_frontier
        peak_states = max(peak_states, len(states))
        if len(states) > max_states:
            raise ReproError(
                f"frontier state count exceeded {max_states} at link {index}; "
                "supply a better link order or use another method"
            )

    return ReliabilityResult(
        value=success.value,
        method="frontier",
        configurations=peak_states,
        details={
            "peak_states": peak_states,
            "frontier_width": frontier_width(net, order) if order else 0,
            "links_swept": len(order),
        },
    )


def directed_frontier_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    order: list[int] | None = None,
    max_states: int = 200_000,
) -> ReliabilityResult:
    """Frontier sweep for **directed** (or mixed) networks, unit demand.

    Where :func:`frontier_reliability` tracks a partition (undirected
    connectivity is an equivalence), the directed variant must track a
    *reachability relation* over the frontier: per state, a bit matrix
    ``M[i]`` ("frontier node j is reachable from frontier node i along
    processed alive links"), a virtual source row ``S`` ("reachable
    from s") and a virtual sink column ``T`` ("reaches t").  All three
    are kept transitively closed; an alive link ``u -> v`` composes
    predecessors of ``u`` with successors of ``v``.  ``S & T != 0``
    means s reaches t — success, banked immediately (reachability is
    monotone in the alive set).  Undirected links apply the closure in
    both directions.

    States are larger than the undirected variant's (``w^2 + 2w`` bits
    versus a partition), so prefer :func:`frontier_reliability` when
    every link is undirected.  Exactness is pinned against naive
    enumeration on random directed graphs in the tests.
    """
    demand.validate_against(net)
    if demand.rate != 1:
        raise ReproError("the frontier method handles unit demands only")
    links = [l for l in net.links() if l.capacity >= 1 and l.tail != l.head]
    usable = {l.index for l in links}
    if order is None:
        order = [i for i in bfs_link_order(net, demand.source) if i in usable]
    else:
        order = [i for i in order if i in usable]
        if set(order) != usable:
            raise ReproError("order must cover every usable link exactly once")

    source, sink = demand.source, demand.sink
    first: dict[Node, int] = {}
    last: dict[Node, int] = {}
    for position, index in enumerate(order):
        link = net.link(index)
        for node in (link.tail, link.head):
            first.setdefault(node, position)
            last[node] = position
    if source not in first or sink not in first:
        return ReliabilityResult(
            value=0.0, method="frontier-directed",
            details={"reason": "a terminal touches no usable link"},
        )

    frontier: list[Node] = []
    # state key: (S bits, T bits, M as tuple of row ints). M rows are
    # reflexive (bit i set in row i).
    states: dict[tuple, float] = {(0, 0, ()): 1.0}
    success = KahanSum()
    peak_states = 1
    s_departed = False
    t_departed = False

    for position, index in enumerate(order):
        link = net.link(index)
        p_fail = link.failure_probability
        p_ok = 1.0 - p_fail

        entering = [
            n for n in (link.tail, link.head) if first[n] == position and n not in frontier
        ]
        new_frontier = frontier + entering
        u = new_frontier.index(link.tail)
        v = new_frontier.index(link.head)
        w = len(new_frontier)
        leaving = [n for n in (link.tail, link.head) if last[n] == position]
        keep = [i for i, n in enumerate(new_frontier) if n not in leaving]

        # Apply global entering transformation once per step.
        def enter(state: tuple) -> tuple[int, int, list[int]]:
            S, T, M = state
            rows = list(M)
            for offset, node in enumerate(entering):
                i = len(rows)
                rows.append(1 << i)
                if node == source:
                    S |= 1 << i
                if node == sink:
                    T |= 1 << i
            return S, T, rows

        new_states: dict[tuple, float] = {}

        def project(S: int, T: int, rows: list[int], weight: float) -> None:
            """Drop departed positions (with failure pruning) and store."""
            if leaving:
                # Compact bit positions in `keep` order.
                def squeeze(bits: int) -> int:
                    out = 0
                    for new_i, old_i in enumerate(keep):
                        if (bits >> old_i) & 1:
                            out |= 1 << new_i
                    return out

                S = squeeze(S)
                T = squeeze(T)
                rows = [squeeze(rows[old_i]) for old_i in keep]
            key = (S, T, tuple(rows))
            new_states[key] = new_states.get(key, 0.0) + weight

        sd = s_departed or (source in leaving)
        td = t_departed or (sink in leaving)

        for state, weight in states.items():
            S0, T0, rows0 = enter(state)

            # Dead branch.  States whose source row (sink column) is
            # empty after that terminal departed can never succeed.
            if p_fail > 0.0 and not ((sd and S0 == 0) or (td and T0 == 0)):
                project(S0, T0, list(rows0), weight * p_fail)

            # Alive branch: close over u -> v (and v -> u if undirected).
            if p_ok > 0.0:
                S, T, rows = S0, T0, list(rows0)
                pairs = [(u, v)] if link.directed else [(u, v), (v, u)]
                for a, b in pairs:
                    succ = rows[b]
                    for x in range(w):
                        if (rows[x] >> a) & 1:
                            rows[x] |= succ
                    if (S >> a) & 1:
                        S |= succ
                    if T & succ:
                        # Something reachable from b reaches t, so every
                        # node reaching a now reaches t (a itself included
                        # via its reflexive row bit; the s -> t case then
                        # surfaces in the S & T check below).
                        for x in range(w):
                            if (rows[x] >> a) & 1:
                                T |= 1 << x
                if S & T:
                    success.add(weight * p_ok)
                    continue
                if not ((sd and S == 0) or (td and T == 0)):
                    project(S, T, rows, weight * p_ok)

        states = new_states
        frontier = [n for n in new_frontier if n not in leaving]
        s_departed, t_departed = sd, td
        peak_states = max(peak_states, len(states))
        if len(states) > max_states:
            raise ReproError(
                f"frontier state count exceeded {max_states} at link {index}; "
                "supply a better link order or use another method"
            )

    return ReliabilityResult(
        value=success.value,
        method="frontier-directed",
        configurations=peak_states,
        details={
            "peak_states": peak_states,
            "links_swept": len(order),
        },
    )
