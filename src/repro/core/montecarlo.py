"""Monte-Carlo reliability estimation.

Samples failure configurations (vectorized, see
:mod:`repro.probability.sampling`), checks each with the feasibility
oracle, and reports the hit ratio with a Wilson score confidence
interval.  Distinct sampled masks are deduplicated through a cache, so
the number of max-flow solves is bounded by the number of *distinct*
configurations seen — on small networks the estimator converges to the
exact algorithms at a fraction of their cost, which is experiment E9's
cross-validation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.result import EstimateResult
from repro.exceptions import EstimationError
from repro.flow.base import MaxFlowSolver
from repro.graph.generators import as_rng
from repro.graph.network import FlowNetwork
from repro.obs.progress import progress_ticker
from repro.obs.recorder import MC_SAMPLES, count, span
from repro.probability.sampling import sample_alive_masks

__all__ = ["montecarlo_reliability", "wilson_interval", "z_quantile"]

# Two-sided z quantiles for the confidence levels we support without
# scipy at runtime.
_Z_TABLE = {
    0.80: 1.2815515655446004,
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.98: 2.3263478740408408,
    0.99: 2.5758293035489004,
}


def z_quantile(confidence: float) -> float:
    """Two-sided normal quantile for a supported confidence level.

    The shared lookup behind every normal-theory interval in the
    estimator tier (Wilson here, the rare-event intervals in
    :mod:`repro.core.rare`); raising on unsupported levels keeps the
    no-scipy promise honest instead of silently approximating.
    """
    try:
        return _Z_TABLE[round(confidence, 2)]
    except KeyError as exc:
        raise EstimationError(
            f"unsupported confidence {confidence}; choose one of {sorted(_Z_TABLE)}"
        ) from exc


def wilson_interval(hits: int, n: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at 0 and 1 (unlike the normal approximation), which
    matters because streaming networks often have reliability ~1.
    """
    if n <= 0:
        raise EstimationError("need at least one sample")
    if not 0 <= hits <= n:
        raise EstimationError(f"hits {hits} outside [0, {n}]")
    z = z_quantile(confidence)
    phat = hits / n
    denom = 1.0 + z * z / n
    center = (phat + z * z / (2 * n)) / denom
    margin = (z / denom) * math.sqrt(phat * (1 - phat) / n + z * z / (4 * n * n))
    return (max(0.0, center - margin), min(1.0, center + margin))


def montecarlo_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    num_samples: int = 10_000,
    confidence: float = 0.95,
    seed: int | None = 0,
    solver: str | MaxFlowSolver | None = None,
    batch_size: int = 4096,
) -> EstimateResult:
    """Estimate the reliability from ``num_samples`` random configurations.

    Sampling is batched; each distinct alive-mask is solved once and
    cached.  Deterministic for a fixed ``seed``.
    """
    demand.validate_against(net)
    if num_samples < 1:
        raise EstimationError("num_samples must be positive")
    if batch_size < 1:
        raise EstimationError("batch_size must be positive")
    rng = as_rng(seed)
    oracle = FeasibilityOracle(net, demand.source, demand.sink, demand.rate, solver=solver)
    cache: dict[int, bool] = {}
    hits = 0
    drawn = 0
    with span("montecarlo.sample", samples=num_samples, batch_size=batch_size):
        with progress_ticker("montecarlo.samples", total=num_samples) as ticker:
            while drawn < num_samples:
                batch = min(batch_size, num_samples - drawn)
                masks = sample_alive_masks(net, batch, rng=rng)
                # One solve per *distinct* mask per batch: dedup first,
                # then scatter the verdicts back over the samples.  The
                # hit count (hence the Wilson interval) is bit-identical
                # to the one-solve-per-sample loop for a fixed seed.
                distinct, inverse = np.unique(masks, return_inverse=True)
                verdicts = np.empty(distinct.shape[0], dtype=bool)
                for idx, mask_np in enumerate(distinct):
                    mask = int(mask_np)
                    verdict = cache.get(mask)
                    if verdict is None:
                        verdict = oracle.feasible(mask)
                        cache[mask] = verdict
                    verdicts[idx] = verdict
                hits += int(np.count_nonzero(verdicts[inverse]))
                drawn += batch
                ticker.tick(batch)
        count(MC_SAMPLES, drawn)
    low, high = wilson_interval(hits, num_samples, confidence)
    return EstimateResult(
        value=hits / num_samples,
        low=low,
        high=high,
        confidence=confidence,
        num_samples=num_samples,
        hits=hits,
        details={
            "distinct_configurations": len(cache),
            "flow_calls": oracle.calls,
        },
    )
