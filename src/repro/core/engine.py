"""Parallel realization-array engine with pre-solve screens.

The bottleneck algorithm (§III-C) spends essentially all of its time in
the two realization arrays: ``|D| * 2^{|E_side|}`` side-local max-flow
solves per side.  This module turns that build into a process-parallel,
screen-accelerated pipeline while keeping the output **bit-identical**
to :func:`repro.core.arrays.build_side_array`:

* the two side arrays (``G_s``, ``G_t``) are independent, so all of
  their chunks go into **one** process pool and run concurrently;
* each side's ``2^m`` configuration lattice is partitioned by its
  **high bits** — the same owner-computes block decomposition
  :mod:`repro.core.parallel` proved for the naive algorithm, now
  factored into the shared :func:`partition_lattice` / :func:`run_chunked`
  helpers both modules use.  Within a chunk the low-bit lattice is
  complete, so monotone pruning stays sound per chunk;
* two *screens* answer "certainly not realized" without a max-flow
  solve: the alive capacity adjacent to the ports cannot carry the
  assignment (:meth:`RealizationScreens.port_budgets`), or a required
  port is disconnected from the terminal in the alive subgraph
  (an inlined undirected BFS with the same semantics as
  :func:`repro.graph.connectivity.component_of`).  Both screens
  are exact negatives, so screened entries still feed the monotone
  pruning and the resulting masks are unchanged.

Bit-identity across worker counts holds because pruning and the screens
are *sound*: every variant computes the same ground-truth realization
masks, only the number of max-flow solves differs (chunked pruning sees
only same-chunk supersets, so more solves; screens, fewer).  The
property tests in ``tests/properties/test_prop_engine.py`` pin this.

Workers are separate processes (no recorder contextvar crosses the
boundary), so each chunk reports its own solve/screen counts and
self-measured seconds; the parent replays them onto ``engine.chunk``
spans, keeping the ``flow_solves`` phase accounting exact.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from repro.core.arrays import (
    RealizationArray,
    _side_template,
    _validate_side_request,
)
from repro.core.latticewalk import gray_walk_table, popcount_descending_order
from repro.exceptions import ReproValueError
from repro.flow.base import MaxFlowSolver, get_solver
from repro.flow.incremental import IncrementalMaxFlow, plan_gray_order, resolve_incremental
from repro.graph.io import from_dict, to_dict
from repro.graph.network import FlowNetwork, Node
from repro.graph.transforms import SideSplit, SubnetworkView
from repro.obs.recorder import (
    ARRAY_ENTRIES_BUILT,
    AUGMENTING_PATHS_SAVED,
    BLOCK_SCREENED,
    FLOW_REPAIRS,
    FLOW_SOLVES,
    SCREENED_SOLVES,
    count,
    span,
    wallclock,
)
from repro.obs.telemetry import current_spool_dir, spool_chunk_events
from repro.probability.bitset import pack_bitplanes
from repro.probability.enumeration import check_enumerable, configuration_probabilities

__all__ = [
    "LatticePlan",
    "RealizationScreens",
    "build_realization_arrays",
    "build_side_array_parallel",
    "default_workers",
    "partition_lattice",
    "run_chunked",
]

_R = TypeVar("_R")


def default_workers() -> int:
    """A sensible worker count: physical parallelism minus one, >= 1."""
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass(frozen=True)
class LatticePlan:
    """An owner-computes partition of a ``2^{num_bits}`` lattice.

    Chunk ``i`` owns every mask whose top ``high_bits`` bits equal
    ``i``; the ``low_bits`` low bits enumerate the chunk's complete
    sub-lattice, which is what keeps per-chunk monotone pruning sound.
    """

    num_bits: int
    high_bits: int

    @property
    def low_bits(self) -> int:
        """Bits enumerated inside each chunk."""
        return self.num_bits - self.high_bits

    @property
    def chunks(self) -> int:
        """Number of chunks (``2^high_bits``)."""
        return 1 << self.high_bits

    @property
    def chunk_size(self) -> int:
        """Masks per chunk (``2^low_bits``)."""
        return 1 << self.low_bits


def partition_lattice(num_bits: int, workers: int) -> LatticePlan:
    """Partition a ``2^{num_bits}`` lattice for ``workers`` processes.

    The chunk count is the smallest power of two >= ``workers`` (capped
    at ``2^{num_bits}``), exactly the scheme the naive parallel scan
    uses, so both decompositions stay comparable in benches.
    """
    if num_bits < 0:
        raise ReproValueError(f"num_bits must be non-negative, got {num_bits}")
    if workers < 1:
        raise ReproValueError(f"workers must be >= 1, got {workers}")
    high_bits = 0
    while (1 << high_bits) < workers and high_bits < num_bits:
        high_bits += 1
    return LatticePlan(num_bits=num_bits, high_bits=high_bits)


def run_chunked(
    worker: Callable[..., _R],
    tasks: Sequence[tuple[Any, ...]],
    *,
    workers: int,
) -> list[_R]:
    """Run ``worker(*task)`` for every task, possibly across processes.

    The shared worker-bootstrap helper behind both the naive parallel
    scan and the realization-array engine: one task per lattice chunk,
    results in task order.  With one worker (or one task) everything
    runs in-process — no pool, no pickling — which is also the path
    that keeps ``workers=1`` observability exact (the recorder
    contextvar does not cross process boundaries).

    ``worker`` must be a module-level (picklable) function and every
    task element spawn-safe; ship networks as :func:`repro.graph.io`
    dicts, not library objects.
    """
    if workers < 1:
        raise ReproValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(tasks) <= 1:
        return [worker(*task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(worker, *zip(*tasks)))


class RealizationScreens:
    """Cheap certain-negative tests for one side's realization solves.

    Both screens only ever answer "this (configuration, assignment)
    pair is certainly **not** realized"; a pass means nothing.  That
    one-sidedness is what makes them free: a screened entry is recorded
    as unrealized — the exact value a max-flow solve would have
    produced — so pruning and the final masks are unchanged.

    * **Budget screen** — the flow through port ``l`` is at most
      ``min(a_l, alive capacity adjacent to the port)`` (for the source
      side, links that can *deliver* into ``x_l``; for the sink side,
      links that can *drain* ``y_l``).  If those bounds sum below the
      demand the assignment cannot be realized.  A port that *is* the
      terminal originates/terminates flow itself and is unbounded.
    * **Connectivity screen** — a port with ``a_l > 0`` that is not in
      the terminal's undirected component of the alive subgraph cannot
      carry flow (undirected connectivity over-approximates directed
      reachability, so this is still a certain negative).

    Both per-configuration inputs (:meth:`port_budgets`,
    :meth:`reachable_ports`) are independent of the assignment, so one
    configuration's screen state is shared across all ``|D|``
    assignments.
    """

    def __init__(
        self,
        net: FlowNetwork,
        *,
        role: str,
        terminal: Node,
        ports: Sequence[Node],
        demand: int,
    ) -> None:
        self._net = net
        self._terminal = terminal
        self._ports = tuple(ports)
        self._demand = demand
        # Per port: None when the port is the terminal (unbounded),
        # else the (link index, capacity) pairs of side links that can
        # carry flow through the port in this side's direction.  Plain
        # tuples: the per-configuration sums run millions of times and
        # integer arithmetic beats tiny-array numpy there.
        feeders: list[tuple[tuple[int, int], ...] | None] = []
        for port in self._ports:
            if port == terminal:
                feeders.append(None)
                continue
            pairs: list[tuple[int, int]] = []
            for link in net.links():
                if link.tail == link.head:
                    continue
                if not link.directed:
                    useful = port in (link.tail, link.head)
                elif role == "source":
                    useful = link.head == port
                else:
                    useful = link.tail == port
                if useful:
                    pairs.append((link.index, link.capacity))
            feeders.append(tuple(pairs))
        self._feeders = feeders
        # Undirected adjacency over *all* side links (self-loops add
        # nothing to a component); the per-configuration BFS filters by
        # the alive mask.  Matches component_of's undirected semantics
        # without rebuilding adjacency 2^m times.
        adjacency: dict[Node, list[tuple[Node, int]]] = {
            node: [] for node in net.nodes()
        }
        for link in net.links():
            if link.tail == link.head:
                continue
            adjacency[link.tail].append((link.head, link.index))
            adjacency[link.head].append((link.tail, link.index))
        self._adjacency = adjacency

    @property
    def feeders(self) -> tuple[tuple[tuple[int, int], ...] | None, ...]:
        """Per-port feeder ``(link index, capacity)`` pairs (``None`` = unbounded).

        The raw capacity model behind :meth:`port_budgets`, exposed so
        the block kernel can evaluate whole blocks of budgets with one
        matmul instead of a per-configuration Python sum.
        """
        return tuple(self._feeders)

    def port_budgets(self, alive: int) -> list[int | None]:
        """Per-port alive adjacent capacity (``None`` = unbounded)."""
        budgets: list[int | None] = []
        for feeder in self._feeders:
            if feeder is None:
                budgets.append(None)
                continue
            budgets.append(
                sum(cap for idx, cap in feeder if (alive >> idx) & 1)
            )
        return budgets

    def reachable_ports(self, alive: int) -> tuple[bool, ...]:
        """Which ports share the terminal's alive undirected component."""
        adjacency = self._adjacency
        component = {self._terminal}
        queue = [self._terminal]
        while queue:
            current = queue.pop()
            for neighbor, index in adjacency[current]:
                if (alive >> index) & 1 and neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        return tuple(port in component for port in self._ports)

    def budget_screened(
        self, assignment: Sequence[int], budgets: Sequence[int | None]
    ) -> bool:
        """Certainly unrealized by capacity alone (reachability aside)."""
        bound = 0
        for a, budget in zip(assignment, budgets):
            bound += a if budget is None else min(int(a), budget)
        return bound < self._demand

    def connectivity_screened(
        self, assignment: Sequence[int], reachable: Sequence[bool]
    ) -> bool:
        """Certainly unrealized because a loaded port is cut off."""
        return any(a > 0 and not ok for a, ok in zip(assignment, reachable))

    def screened(
        self,
        assignment: Sequence[int],
        budgets: Sequence[int | None],
        reachable: Sequence[bool],
    ) -> bool:
        """True when the pair is certainly not realized (skip the solve)."""
        return self.budget_screened(assignment, budgets) or self.connectivity_screened(
            assignment, reachable
        )



def _build_chunk_masks(
    net: FlowNetwork,
    *,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None,
    prune: bool,
    screen: bool,
    low_bits: int,
    high_pattern: int,
    incremental: bool = False,
    block_bits: int | None = None,
) -> tuple[np.ndarray, int, int, int, int, int]:
    """Realization masks for one high-bit chunk of one side's lattice.

    Returns ``(masks, flow_calls, screened, block_screened, repairs,
    paths_saved)`` where ``masks`` is the ``uint64`` array for the
    chunk's ``2^low_bits`` configurations in low-bit order
    (``repairs`` / ``paths_saved`` are zero on the cold path;
    ``block_screened`` is zero on the scalar paths).  Runs identically
    in-process and inside a worker.  With ``block_bits`` the chunk is
    filled by the bit-parallel kernel
    (:func:`repro.core.bitplane.blocked_side_masks`) — the chunk is
    just a sub-lattice with the chunk pattern as external base, so
    ``workers`` and ``block_bits`` compose without changing the bits.
    """
    template, port_names, s_idx, t_idx = _side_template(
        net, role=role, terminal=terminal, ports=ports, demand=demand
    )
    engine = get_solver(solver)

    if block_bits is not None:
        from repro.core.bitplane import blocked_side_masks  # local: avoids cycle

        rows, stats = blocked_side_masks(
            net,
            template,
            port_names,
            s_idx,
            t_idx,
            role=role,
            terminal=terminal,
            ports=ports,
            assignments=assignments,
            demand=demand,
            solver=engine,
            prune=prune,
            screen=screen,
            incremental=incremental,
            n_bits=low_bits,
            external_base=high_pattern << low_bits,
            block_bits=block_bits,
        )
        return (
            rows,
            stats.flow_calls,
            stats.screened,
            stats.block_screened,
            stats.repairs,
            stats.paths_saved,
        )

    screens = (
        RealizationScreens(
            net, role=role, terminal=terminal, ports=ports, demand=demand
        )
        if screen
        else None
    )

    check_enumerable(low_bits)
    size = 1 << low_bits
    base = high_pattern << low_bits
    num_assignments = len(assignments)
    flow_calls = 0
    screened = 0

    if incremental:
        return _chunk_masks_gray(
            template,
            port_names,
            s_idx,
            t_idx,
            screens,
            assignments=assignments,
            demand=demand,
            solver=engine,
            prune=prune,
            low_bits=low_bits,
            base=base,
        )

    if prune and low_bits > 0:
        order = [int(x) for x in popcount_descending_order(low_bits)]
    else:
        order = list(range(size))

    all_viable = (1 << num_assignments) - 1
    caps_by_assignment = [
        {name: int(a) for name, a in zip(port_names, assignment)}
        for assignment in assignments
    ]
    # Row masks live as plain ints: the pruning sweep ANDs one superset
    # row per missing bit, shared across all |D| assignments at once.
    rows = [0] * size
    for low in order:
        viable = all_viable
        if prune:
            # An assignment stays viable only while every immediate
            # in-chunk superset realized it (monotonicity); screened
            # entries were recorded unrealized, so they prune too.
            bits = ~low & (size - 1)
            while bits:
                lowest = bits & -bits
                viable &= rows[low | lowest]
                if not viable:
                    break
                bits ^= lowest
            if not viable:
                continue

        full_mask = base | low
        budgets: list[int | None] | None = None
        reachable: tuple[bool, ...] | None = None
        row = 0
        while viable:
            j_bit = viable & -viable
            viable ^= j_bit
            j = j_bit.bit_length() - 1
            assignment = assignments[j]
            if screens is not None:
                # Budget screen first — it is a handful of int ops; the
                # reachability BFS runs at most once per configuration
                # and only when some assignment survives the budgets.
                if budgets is None:
                    budgets = screens.port_budgets(full_mask)
                if screens.budget_screened(assignment, budgets):
                    screened += 1
                    continue
                if reachable is None:
                    reachable = screens.reachable_ports(full_mask)
                if screens.connectivity_screened(assignment, reachable):
                    screened += 1
                    continue
            graph = template.configure(
                alive=full_mask, virtual_capacities=caps_by_assignment[j]
            )
            flow_calls += 1
            value = engine.solve(graph, s_idx, t_idx, limit=demand)
            if value >= demand:
                row |= j_bit
        rows[low] = row

    masks = np.asarray(rows, dtype=np.uint64)
    return masks, flow_calls, screened, 0, 0, 0


def _chunk_masks_gray(
    template: Any,
    port_names: Sequence[str],
    s_idx: int,
    t_idx: int,
    screens: "RealizationScreens | None",
    *,
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: MaxFlowSolver,
    prune: bool,
    low_bits: int,
    base: int,
) -> tuple[np.ndarray, int, int, int, int, int]:
    """Incremental variant of the chunk build: chunk-local Gray walks.

    One :class:`~repro.flow.incremental.IncrementalMaxFlow` per
    assignment walks the chunk's complete low-bit sub-lattice in
    Gray-code order (the high bits stay pinned to the chunk pattern), so
    consecutive solves repair a one-link delta.  The screens run
    unchanged — a screened entry is recorded unrealized without moving
    the engine — and their per-configuration state is cached across the
    ``|D|`` walks exactly as the cold path shares it across the inner
    assignment loop.  Masks are bit-identical to the cold chunk build.
    """
    check_enumerable(low_bits)
    size = 1 << low_bits
    num_assignments = len(assignments)
    realized = np.zeros((size, num_assignments), dtype=bool)
    flow_calls = screened = repairs = paths_saved = 0
    budgets_cache: dict[int, list[int | None]] = {}
    reachable_cache: dict[int, tuple[bool, ...]] = {}

    for j, assignment in enumerate(assignments):
        caps = {name: int(a) for name, a in zip(port_names, assignment)}
        engine = IncrementalMaxFlow(
            template,
            s_idx,
            t_idx,
            solver=solver,
            limit=demand,
            alive=base,
            virtual_capacities=caps,
        )
        order = plan_gray_order(
            template, s_idx, t_idx, low_bits,
            solver=solver, limit=demand or None, virtual_capacities=caps,
        )

        def decide(low: int, _engine: IncrementalMaxFlow = engine, _a=assignment) -> bool:
            nonlocal flow_calls, screened
            full_mask = base | low
            if screens is not None:
                budgets = budgets_cache.get(low)
                if budgets is None:
                    budgets = budgets_cache[low] = screens.port_budgets(full_mask)
                if screens.budget_screened(_a, budgets):
                    screened += 1
                    return False
                reachable = reachable_cache.get(low)
                if reachable is None:
                    reachable = reachable_cache[low] = screens.reachable_ports(full_mask)
                if screens.connectivity_screened(_a, reachable):
                    screened += 1
                    return False
            return _engine.goto(full_mask) >= demand

        gray_walk_table(realized[:, j], low_bits, decide, order=order, prune=prune)
        flow_calls += engine.solver_calls
        repairs += engine.repairs
        paths_saved += engine.paths_saved

    masks = pack_bitplanes(realized)
    return masks, flow_calls, screened, 0, repairs, paths_saved


def _chunk_worker(payload: dict[str, Any]) -> dict[str, Any]:
    """Process-pool entry point: build one chunk from a plain-dict payload.

    Ships nothing but JSON-ready data plus hashable node labels, so the
    spawn start method works too.  Self-times through the sanctioned
    :func:`repro.obs.wallclock` and reports counts for the parent to
    replay onto spans (worker processes have no recorder installed).
    """
    start = wallclock()
    net = from_dict(payload["net"])
    masks, flow_calls, screened, block_screened, repairs, paths_saved = (
        _build_chunk_masks(
            net,
            role=payload["role"],
            terminal=payload["terminal"],
            ports=payload["ports"],
            assignments=payload["assignments"],
            demand=payload["demand"],
            solver=payload["solver"],
            prune=payload["prune"],
            screen=payload["screen"],
            low_bits=payload["low_bits"],
            high_pattern=payload["high_pattern"],
            incremental=payload["incremental"],
            block_bits=payload.get("block_bits"),
        )
    )
    result = {
        "side": payload["side"],
        "chunk": payload["high_pattern"],
        "masks": masks,
        "flow_calls": flow_calls,
        "screened": screened,
        "block_screened": block_screened,
        "repairs": repairs,
        "paths_saved": paths_saved,
        "entries": len(payload["assignments"]) * (1 << payload["low_bits"]),
        "seconds": wallclock() - start,
    }
    spool_dir = payload.get("spool_dir")
    if spool_dir:
        # Mirror _merge_side's replay exactly (same names, same
        # zero-suppression for the optional counters) so summing the
        # worker streams reproduces the parent's replayed totals
        # bit-for-bit — the invariant the telemetry property suite pins.
        counters: dict[str, int | float] = {
            FLOW_SOLVES: flow_calls,
            SCREENED_SOLVES: screened,
            ARRAY_ENTRIES_BUILT: result["entries"],
        }
        if block_screened:
            counters[BLOCK_SCREENED] = block_screened
        if repairs:
            counters[FLOW_REPAIRS] = repairs
        if paths_saved:
            counters[AUGMENTING_PATHS_SAVED] = paths_saved
        spool_chunk_events(
            spool_dir,
            "engine.chunk",
            attrs={"side": payload["side"], "chunk": payload["high_pattern"]},
            seconds=result["seconds"],
            counters=counters,
        )
    return result


def _solver_token(solver: str | MaxFlowSolver | None) -> str | None:
    """A spawn-safe stand-in for a solver argument (registry name)."""
    if isinstance(solver, MaxFlowSolver):
        return solver.name
    return solver


def _side_payloads(
    side: SubnetworkView,
    *,
    side_name: str,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None,
    prune: bool,
    screen: bool,
    incremental: bool,
    plan: LatticePlan,
    block_bits: int | None = None,
) -> list[dict[str, Any]]:
    """One :func:`_chunk_worker` payload per chunk of one side."""
    net_data = to_dict(side.network)
    spool = current_spool_dir()
    return [
        {
            "side": side_name,
            "spool_dir": str(spool) if spool is not None else None,
            "role": role,
            "net": net_data,
            "terminal": terminal,
            "ports": tuple(ports),
            "assignments": [tuple(int(x) for x in a) for a in assignments],
            "demand": demand,
            "solver": _solver_token(solver),
            "prune": prune,
            "screen": screen,
            "incremental": incremental,
            "low_bits": plan.low_bits,
            "high_pattern": pattern,
            "block_bits": block_bits,
        }
        for pattern in range(plan.chunks)
    ]


def _merge_side(
    side: SubnetworkView,
    results: list[dict[str, Any]],
    *,
    side_name: str,
    num_assignments: int,
) -> tuple[RealizationArray, int]:
    """Bit-exact merge of one side's chunk results, replaying obs counts.

    Chunks are concatenated in high-pattern order, so entry ``i`` of the
    merged array is exactly configuration ``i`` — the same indexing the
    serial builder produces.  Returns the array and the side's screened
    count.
    """
    ordered = sorted(results, key=lambda r: int(r["chunk"]))
    screened_total = 0
    flow_total = 0
    for r in ordered:
        with span(
            "engine.chunk",
            side=side_name,
            chunk=int(r["chunk"]),
            worker_seconds=float(r["seconds"]),
        ):
            count(FLOW_SOLVES, int(r["flow_calls"]))
            count(SCREENED_SOLVES, int(r["screened"]))
            count(ARRAY_ENTRIES_BUILT, int(r["entries"]))
            if r.get("block_screened"):
                count(BLOCK_SCREENED, int(r["block_screened"]))
            if r.get("repairs"):
                count(FLOW_REPAIRS, int(r["repairs"]))
            if r.get("paths_saved"):
                count(AUGMENTING_PATHS_SAVED, int(r["paths_saved"]))
        screened_total += int(r["screened"])
        flow_total += int(r["flow_calls"])
    masks = np.concatenate([np.asarray(r["masks"], dtype=np.uint64) for r in ordered])
    probabilities = configuration_probabilities(side.network)
    array = RealizationArray(
        masks=masks,
        probabilities=probabilities,
        num_assignments=num_assignments,
        flow_calls=flow_total,
    )
    return array, screened_total


def build_side_array_parallel(
    side: SubnetworkView,
    *,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
    screen: bool = True,
    workers: int | None = None,
    incremental: bool | None = None,
    block_bits: int | None = None,
) -> RealizationArray:
    """Chunked (optionally multi-process) drop-in for ``build_side_array``.

    Produces masks bit-identical to
    :func:`repro.core.arrays.build_side_array` for every ``workers``
    value — only ``flow_calls`` differs (chunked pruning sees only
    same-chunk supersets, so more solves; screens, fewer).
    ``workers=None`` uses :func:`default_workers`; ``incremental=None``
    auto-enables the per-chunk Gray walk whenever the solver supports
    the warm-start contract; ``block_bits`` routes every chunk through
    the bit-parallel kernel (:mod:`repro.core.bitplane`) — still
    bit-identical, only the solve accounting moves.
    """
    from repro.core.bitplane import resolve_block_bits  # local: avoids cycle

    block_bits = resolve_block_bits(block_bits)
    if workers is None:
        workers = default_workers()
    net = side.network
    _validate_side_request(
        net, role=role, assignments=assignments, ports=ports, demand=demand
    )
    use_incremental = resolve_incremental(solver, incremental)
    plan = partition_lattice(net.num_links, workers)
    payloads = _side_payloads(
        side,
        side_name=role,
        role=role,
        terminal=terminal,
        ports=ports,
        assignments=assignments,
        demand=demand,
        solver=solver,
        prune=prune,
        screen=screen,
        incremental=use_incremental,
        plan=plan,
        block_bits=block_bits,
    )
    # Literal span names (not f"engine.{role}_array"): RR111 keeps the
    # span vocabulary closed to the KNOWN_SPANS catalogue.
    span_name = "engine.source_array" if role == "source" else "engine.sink_array"
    with span(
        span_name,
        links=net.num_links,
        assignments=len(assignments),
        workers=workers,
        chunks=plan.chunks,
    ):
        results = run_chunked(_chunk_worker, [(p,) for p in payloads], workers=workers)
        array, _ = _merge_side(
            side, results, side_name=role, num_assignments=len(assignments)
        )
    return array


def build_realization_arrays(
    split: SideSplit,
    *,
    source: Node,
    sink: Node,
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
    screen: bool = True,
    workers: int | None = None,
    incremental: bool | None = None,
    block_bits: int | None = None,
) -> tuple[RealizationArray, RealizationArray, dict[str, Any]]:
    """Both §III-C side arrays through one process pool.

    The two sides are independent, so every chunk of ``G_s`` and
    ``G_t`` goes into the same pool and the slow side cannot serialize
    behind the fast one.  Returns ``(source_array, sink_array, stats)``
    with ``stats`` carrying the engine accounting (``workers``,
    ``screened_solves``, ``block_screened``, per-side chunk counts, and
    the incremental repair totals when the Gray walk is on).
    ``block_bits`` switches every chunk to the bit-parallel kernel.
    """
    from repro.core.bitplane import resolve_block_bits  # local: avoids cycle

    block_bits = resolve_block_bits(block_bits)
    if workers is None:
        workers = default_workers()
    for side, role, ports in (
        (split.source_side, "source", split.source_ports),
        (split.sink_side, "sink", split.sink_ports),
    ):
        _validate_side_request(
            side.network,
            role=role,
            assignments=assignments,
            ports=ports,
            demand=demand,
        )
    use_incremental = resolve_incremental(solver, incremental)
    source_plan = partition_lattice(split.source_side.network.num_links, workers)
    sink_plan = partition_lattice(split.sink_side.network.num_links, workers)
    payloads = _side_payloads(
        split.source_side,
        side_name="source",
        role="source",
        terminal=source,
        ports=split.source_ports,
        assignments=assignments,
        demand=demand,
        solver=solver,
        prune=prune,
        screen=screen,
        incremental=use_incremental,
        plan=source_plan,
        block_bits=block_bits,
    ) + _side_payloads(
        split.sink_side,
        side_name="sink",
        role="sink",
        terminal=sink,
        ports=split.sink_ports,
        assignments=assignments,
        demand=demand,
        solver=solver,
        prune=prune,
        screen=screen,
        incremental=use_incremental,
        plan=sink_plan,
        block_bits=block_bits,
    )
    with span(
        "engine.build",
        workers=workers,
        chunks=len(payloads),
        screen=screen,
        prune=prune,
    ):
        results = run_chunked(_chunk_worker, [(p,) for p in payloads], workers=workers)
        with span(
            "engine.source_array",
            links=split.source_side.network.num_links,
            assignments=len(assignments),
            chunks=source_plan.chunks,
        ):
            source_array, source_screened = _merge_side(
                split.source_side,
                [r for r in results if r["side"] == "source"],
                side_name="source",
                num_assignments=len(assignments),
            )
        with span(
            "engine.sink_array",
            links=split.sink_side.network.num_links,
            assignments=len(assignments),
            chunks=sink_plan.chunks,
        ):
            sink_array, sink_screened = _merge_side(
                split.sink_side,
                [r for r in results if r["side"] == "sink"],
                side_name="sink",
                num_assignments=len(assignments),
            )
    stats: dict[str, Any] = {
        "workers": workers,
        "screened_solves": source_screened + sink_screened,
        "block_screened": sum(int(r.get("block_screened", 0)) for r in results),
        "source_chunks": source_plan.chunks,
        "sink_chunks": sink_plan.chunks,
        "incremental": use_incremental,
        "block_bits": block_bits,
        "flow_repairs": sum(int(r.get("repairs", 0)) for r in results),
        "augmenting_paths_saved": sum(int(r.get("paths_saved", 0)) for r in results),
    }
    return source_array, sink_array, stats
