"""Sweep engine: content-addressed array reuse + vectorized multi-point Eq. 2/3.

The paper's §III-C realization arrays are purely combinatorial: whether a
side configuration realizes an assignment is a max-flow question over the
side topology, capacities, ports and the assignment tuple — link failure
probabilities never enter.  Yet every :func:`bottleneck_reliability` call
(and every point of a fig-4-style availability curve) rebuilds both
``2^{|E_side|}`` arrays from scratch; only Eq. 2 (pattern probabilities)
and Eq. 3 (the accumulation) change across a probability sweep.

This module splits the two phases:

:class:`ArrayCache`
    A content-addressed store of realization *columns* (one assignment's
    bool vector over the side lattice), in memory with an optional
    on-disk tier.  The key fingerprints everything that determines the
    bits — side topology, capacities, directedness, role, terminal,
    ports, and the assignment tuple (the demand is its component sum) —
    and deliberately **excludes** failure probabilities, solver, prune,
    screens, the incremental toggle and worker counts: the columns are
    ground truth ("max-flow ≥ d" per configuration), so every build path
    produces identical bits (pinned by the engine/incremental property
    suites).

:func:`cached_side_array`
    Cache-aware front door to both §III-C builders (serial
    :func:`repro.core.arrays.build_side_array` and the parallel
    :func:`repro.core.engine.build_side_array_parallel`): columns are
    looked up per assignment, only the misses are built (the builders
    accept assignment subsets), and the result is packed exactly like
    the direct builders.

:func:`compute_reliability_sweep`
    One array build, then Eq. 2 + Eq. 3 for a whole grid of per-link
    failure vectors in a vectorized pass: 2-D doubling tables
    (:func:`probability_grid`), row-wise class aggregation, the batched
    superset zeta (:func:`repro.probability.zeta.superset_zeta_rows`)
    and per-point reductions that reuse the *same scalar operations* as
    :mod:`repro.core.accumulate` on bit-equal inputs — so every sweep
    point is bit-identical to a fresh pointwise call (a property suite
    enforces value and ``details`` equality).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.accumulate import MAX_ZETA_ASSIGNMENTS, restrict_masks
from repro.core.arrays import (
    RealizationArray,
    _validate_side_request,
    build_side_array,
)
from repro.core.assignments import classify_by_support, enumerate_assignments
from repro.core.demand import FlowDemand
from repro.core.result import ReliabilityResult
from repro.core.summation import prob_fsum
from repro.exceptions import DecompositionError, IntractableError, ReproValueError
from repro.flow.base import MaxFlowSolver
from repro.flow.incremental import resolve_incremental
from repro.graph.cuts import find_bottleneck, verify_bottleneck
from repro.graph.network import FlowNetwork, Node
from repro.graph.transforms import SideSplit, SubnetworkView
from repro.obs.recorder import (
    ARRAY_CACHE_BYTES,
    ARRAY_CACHE_EVICTED_BYTES,
    ARRAY_CACHE_EVICTIONS,
    ARRAY_CACHE_HITS,
    ARRAY_CACHE_MISSES,
    ASSIGNMENTS_ENUMERATED,
    count,
    span,
)
from repro.probability.bitset import pack_bitplanes, parity_array
from repro.probability.enumeration import check_enumerable, configuration_probabilities
from repro.probability.zeta import superset_zeta_rows

__all__ = [
    "ArrayCache",
    "BatchPlan",
    "BatchResult",
    "SweepSpec",
    "SweepResult",
    "cached_side_array",
    "compute_reliability_sweep",
    "evaluate_batch",
    "network_fingerprint",
    "plan_batch",
    "probability_grid",
    "side_fingerprint",
]

#: Bump when the fingerprint payload layout changes (invalidates disk caches).
_FINGERPRINT_VERSION = 1

#: Grid batches are sized so ``batch_points * 2^{m_side}`` table entries
#: stay below this budget (the 2-D doubling tables are the peak).
_MAX_GRID_ENTRIES = 1 << 22


def side_fingerprint(
    net: FlowNetwork, *, role: str, terminal: Node, ports: Sequence[Node]
) -> str:
    """Canonical digest of everything that determines a side's realization bits.

    Covers the side topology in link-index order (tail, head, capacity,
    directedness), the node list, the role, the terminal and the port
    sequence.  Failure probabilities are deliberately excluded — the
    §III-C combinatorics never read them — which is exactly what lets
    one array serve a whole availability sweep.  Node labels are
    canonicalised via ``repr`` (str/int/tuple labels all have
    deterministic reprs).
    """
    payload = {
        "v": _FINGERPRINT_VERSION,
        "role": role,
        "terminal": repr(terminal),
        "ports": [repr(p) for p in ports],
        "nodes": [repr(n) for n in net.nodes()],
        "links": [
            [repr(link.tail), repr(link.head), int(link.capacity), bool(link.directed)]
            for link in net.links()
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def network_fingerprint(net: FlowNetwork) -> str:
    """Canonical digest of a whole network's topology.

    The full-network twin of :func:`side_fingerprint`: node list plus
    every link's endpoints, capacity and directedness in link-index
    order.  Failure probabilities are deliberately excluded — two
    networks with the same fingerprint share every realization column,
    which is exactly the merge test :func:`plan_batch` groups queries
    by (a probability difference is expressible as an ``overrides``
    sweep point on either network).
    """
    payload = {
        "v": _FINGERPRINT_VERSION,
        "nodes": [repr(n) for n in net.nodes()],
        "links": [
            [repr(link.tail), repr(link.head), int(link.capacity), bool(link.directed)]
            for link in net.links()
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _column_key(side_digest: str, assignment: Sequence[int]) -> str:
    """Key of one realization column: the side digest + the assignment.

    The demand rate is implied (it is the component sum), so demand
    sweeps sharing assignment tuples across rates reuse columns too.
    """
    tail = ",".join(str(int(a)) for a in assignment)
    return hashlib.sha256(f"{side_digest}|{tail}".encode("utf-8")).hexdigest()


class ArrayCache:
    """Content-addressed store of §III-C realization columns.

    Columns live bit-packed (``numpy.packbits``) in memory; with a
    ``directory`` every stored column is also written as a ``.npy`` file
    named by its key, so later processes (or a second CLI run) start
    warm.  Disk writes are atomic (temp file + ``os.replace``).

    The cache is safe to share across *every* build path — serial,
    engine, any worker count, screens on/off, incremental on/off —
    because the columns are ground truth and those knobs are pinned
    bit-identical by the property suites; none of them is part of the
    key.

    ``max_bytes`` bounds the resident bytes of tracked columns (packed
    payload; on-disk entries by file size).  When a :meth:`put` or
    :meth:`get` pushes the total past the bound, least-recently-used
    keys are evicted — dropped from memory *and* unlinked from the disk
    tier — until the total fits again.  Eviction is claim-file-aware:
    a key with a live ``<key>.claim`` (a PR 8 sharded builder is about
    to publish or depend on it) is never evicted, so bounded caches and
    share-nothing sharded builds compose.  The just-touched key is
    likewise protected, so a single column larger than the bound still
    serves (the cache degrades to holding one column, it never
    thrashes the working item).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str] | None = None,
        *,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ReproValueError("max_bytes must be a positive byte count")
        self._memory: dict[str, np.ndarray] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        #: Insertion order is recency order (oldest first); values are
        #: the accounted byte size per key.
        self._sizes: dict[str, int] = {}
        self._total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.evictions = 0
        self.evicted_bytes = 0
        if self.max_bytes is not None and self.directory is not None:
            self._adopt_disk_tier()

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def total_bytes(self) -> int:
        """Accounted bytes of every tracked column (memory + disk)."""
        return self._total_bytes

    def stats(self) -> dict[str, int]:
        """Cumulative counters since construction."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
        }

    # -- the LRU bound ------------------------------------------------------

    def _adopt_disk_tier(self) -> None:
        """Track pre-existing ``.npy`` files so the bound covers them.

        Ordered oldest-modified first: files from earlier runs are the
        least recently used until something touches them again.
        """
        assert self.directory is not None
        entries: list[tuple[float, str, int]] = []
        for path in self.directory.glob("*.npy"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.stem, int(stat.st_size)))
        for _, key, size in sorted(entries):
            self._sizes[key] = size
            self._total_bytes += size
        self._enforce_bound(protect=None)

    def _touch(self, key: str, size: int) -> None:
        """Record ``key`` as most recently used (and its accounted size)."""
        if self.max_bytes is None:
            return
        previous = self._sizes.pop(key, None)
        if previous is not None:
            self._total_bytes -= previous
        self._sizes[key] = size
        self._total_bytes += size
        self._enforce_bound(protect=key)

    def _enforce_bound(self, protect: str | None) -> None:
        if self.max_bytes is None:
            return
        while self._total_bytes > self.max_bytes:
            victim = self._pick_victim(protect)
            if victim is None:
                return
            self._evict(victim)

    def _pick_victim(self, protect: str | None) -> str | None:
        for key in self._sizes:  # insertion order == recency order
            if key == protect:
                continue
            if self.directory is not None and self._claim_path(key).exists():
                continue  # a sharded builder holds this key — never race it
            return key
        return None

    def _evict(self, key: str) -> None:
        size = self._sizes.pop(key)
        self._total_bytes -= size
        self._memory.pop(key, None)
        if self.directory is not None:
            self._path(key).unlink(missing_ok=True)
        self.evictions += 1
        self.evicted_bytes += size
        count(ARRAY_CACHE_EVICTIONS, 1)
        count(ARRAY_CACHE_EVICTED_BYTES, size)

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.npy"

    def _claim_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.claim"

    def contains(self, key: str) -> bool:
        """Whether ``key``'s column is already available (memory or disk).

        Unlike :meth:`get` this never loads, unpacks or counts — it is
        the cheap pre-claim test of the sharded build loop.
        """
        if key in self._memory:
            return True
        return self.directory is not None and self._path(key).is_file()

    def try_claim(self, key: str) -> bool:
        """Atomically claim ``key`` for building (sharded builds).

        Creates ``<key>.claim`` with ``O_CREAT | O_EXCL`` — the
        filesystem arbitrates, so exactly one process wins no matter how
        many race.  Claims are advisory work-distribution only: a stale
        claim (crashed worker) never blocks correctness, because every
        reader falls back to building unclaimed-but-missing columns
        itself and publication (:meth:`put`) is idempotent.  Requires a
        ``directory`` (share-nothing workers have no other channel).
        """
        if self.directory is None:
            raise ReproValueError("claims require a cache directory")
        try:
            fd = os.open(self._claim_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def release_claim(self, key: str) -> None:
        """Drop a claim taken with :meth:`try_claim` (idempotent)."""
        if self.directory is None:
            raise ReproValueError("claims require a cache directory")
        self._claim_path(key).unlink(missing_ok=True)

    def get(self, key: str, num_configurations: int) -> np.ndarray | None:
        """The bool column for ``key`` (length ``num_configurations``), or None.

        The returned array is **read-only** (``writeable=False``): the
        packed buffer is shared by every later hit, so an in-place store
        must fail loudly instead of silently poisoning the next sweep
        point.  Callers that need a private writable column take a
        ``.copy()`` — the invariant lint rule RR202 checks statically.
        """
        packed = self._memory.get(key)
        if packed is None and self.directory is not None:
            path = self._path(key)
            if path.is_file():
                packed = np.load(path)
                packed.setflags(write=False)
                self._memory[key] = packed
        if packed is None:
            self.misses += 1
            count(ARRAY_CACHE_MISSES, 1)
            return None
        self.hits += 1
        self.bytes_read += int(packed.nbytes)
        count(ARRAY_CACHE_HITS, 1)
        count(ARRAY_CACHE_BYTES, int(packed.nbytes))
        self._touch(key, int(packed.nbytes))
        column = np.unpackbits(
            packed, count=num_configurations, bitorder="little"
        ).astype(bool)
        column.setflags(write=False)
        return column

    def put(self, key: str, column: np.ndarray) -> None:
        """Store one bool column under ``key`` (memory + optional disk)."""
        packed = np.packbits(np.asarray(column, dtype=bool), bitorder="little")
        packed.setflags(write=False)
        self._memory[key] = packed
        self.stores += 1
        self.bytes_written += int(packed.nbytes)
        count(ARRAY_CACHE_BYTES, int(packed.nbytes))
        if self.directory is not None:
            path = self._path(key)
            if not path.is_file():
                tmp = path.with_name(path.name + ".tmp")
                with open(tmp, "wb") as handle:
                    np.save(handle, packed)
                os.replace(tmp, path)
        self._touch(key, int(packed.nbytes))


def _build_missing(
    side: SubnetworkView,
    *,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None,
    prune: bool,
    screen: bool,
    workers: int | None,
    incremental: bool | None,
    block_bits: int | None = None,
) -> RealizationArray:
    """Build a (possibly partial) assignment subset through the usual builders."""
    if workers is None:
        if block_bits is not None:
            from repro.core.bitplane import build_side_array_blocked  # local: cycle

            return build_side_array_blocked(
                side,
                role=role,
                terminal=terminal,
                ports=ports,
                assignments=assignments,
                demand=demand,
                solver=solver,
                prune=prune,
                screen=screen,
                incremental=incremental,
                block_bits=block_bits,
            )
        return build_side_array(
            side,
            role=role,
            terminal=terminal,
            ports=ports,
            assignments=assignments,
            demand=demand,
            solver=solver,
            prune=prune,
            incremental=incremental,
        )
    from repro.core.engine import build_side_array_parallel  # local: pools live there

    return build_side_array_parallel(
        side,
        role=role,
        terminal=terminal,
        ports=ports,
        assignments=assignments,
        demand=demand,
        solver=solver,
        prune=prune,
        screen=screen,
        workers=workers,
        incremental=incremental,
        block_bits=block_bits,
    )


def cached_side_array(
    side: SubnetworkView,
    *,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
    screen: bool = True,
    workers: int | None = None,
    incremental: bool | None = None,
    block_bits: int | None = None,
    cache: ArrayCache | None = None,
) -> RealizationArray:
    """§III-C side array with per-assignment column caching.

    Every assignment's column is looked up in ``cache`` first; only the
    misses go through :func:`_build_missing` (columns are independent,
    so building a subset yields the same bits as building all of them),
    then the full matrix is packed exactly like the direct builders.
    ``flow_calls`` counts only the solves spent on misses — a fully warm
    call reports 0.  With ``cache=None`` this is a plain dispatch to the
    serial, blocked (``block_bits``) or parallel builder.
    """
    if cache is None:
        return _build_missing(
            side,
            role=role,
            terminal=terminal,
            ports=ports,
            assignments=assignments,
            demand=demand,
            solver=solver,
            prune=prune,
            screen=screen,
            workers=workers,
            incremental=incremental,
            block_bits=block_bits,
        )
    net = side.network
    m = net.num_links
    check_enumerable(m)
    _validate_side_request(
        net, role=role, assignments=assignments, ports=ports, demand=demand
    )
    size = 1 << m
    num_assignments = len(assignments)
    digest = side_fingerprint(net, role=role, terminal=terminal, ports=ports)
    keys = [_column_key(digest, a) for a in assignments]
    realized = np.zeros((size, num_assignments), dtype=bool)
    flow_calls = 0
    with span("sweep.array_cache", role=role, links=m, assignments=num_assignments):
        missing: list[int] = []
        for j, key in enumerate(keys):
            column = cache.get(key, size)
            if column is None:
                missing.append(j)
            else:
                realized[:, j] = column
        if missing:
            built = _build_missing(
                side,
                role=role,
                terminal=terminal,
                ports=ports,
                assignments=[assignments[j] for j in missing],
                demand=demand,
                solver=solver,
                prune=prune,
                screen=screen,
                workers=workers,
                incremental=incremental,
                block_bits=block_bits,
            )
            flow_calls = built.flow_calls
            for local, j in enumerate(missing):
                column = (
                    (built.masks >> np.uint64(local)) & np.uint64(1)
                ).astype(bool)
                realized[:, j] = column
                cache.put(keys[j], column)
    masks = pack_bitplanes(realized)
    return RealizationArray(
        masks=masks,
        probabilities=configuration_probabilities(net),
        num_assignments=num_assignments,
        flow_calls=flow_calls,
    )


# -- the vectorized probability phase -------------------------------------


def probability_grid(failure_grid: np.ndarray) -> np.ndarray:
    """2-D doubling table: row ``s`` is the configuration-probability
    table of failure vector ``failure_grid[s]``.

    One concatenation per link, dead half first — the same scheme (and
    the same left-to-right multiply order) as
    :func:`repro.probability.configuration_probabilities` and the cut
    table of :func:`repro.core.bottleneck.pattern_probabilities`, so
    every row is bit-identical to its scalar counterpart.
    """
    grid = np.ascontiguousarray(np.asarray(failure_grid, dtype=np.float64))
    if grid.ndim != 2:
        raise ReproValueError("failure grid must be two-dimensional (points x links)")
    if grid.size and (np.any(grid < 0.0) or np.any(grid >= 1.0)):
        raise ReproValueError("failure probabilities must lie in [0, 1)")
    points, m = grid.shape
    check_enumerable(m)
    table = np.ones((points, 1), dtype=np.float64)
    for i in range(m):
        p = grid[:, i : i + 1]
        table = np.concatenate([table * p, table * (1.0 - p)], axis=1)
    return table


def _class_grid(
    masks: np.ndarray,
    probability_rows: np.ndarray,
    assignment_indices: Sequence[int],
) -> np.ndarray:
    """Row-wise :func:`repro.core.accumulate.side_class_probabilities`.

    Row ``s`` aggregates ``probability_rows[s]`` by restricted realized
    mask with the same sequential ``np.add.at`` scatter as the scalar
    path, so each row is bit-identical to the pointwise aggregate.
    """
    q = len(assignment_indices)
    if q > MAX_ZETA_ASSIGNMENTS:
        raise IntractableError(
            f"zeta accumulation over {q} assignments needs 2^{q} table entries",
            required=q,
            limit=MAX_ZETA_ASSIGNMENTS,
        )
    restricted = restrict_masks(masks, assignment_indices).astype(np.int64)
    points = probability_rows.shape[0]
    table = np.zeros((points, 1 << q), dtype=np.float64)
    for s in range(points):
        np.add.at(table[s], restricted, probability_rows[s])
    return table


def _zeta_r_grid(
    source_masks: np.ndarray,
    sink_masks: np.ndarray,
    source_probability_rows: np.ndarray,
    sink_probability_rows: np.ndarray,
    assignment_indices: Sequence[int],
) -> np.ndarray:
    """Per-point ``r_{E'}`` via the zeta strategy, one value per grid row."""
    q = len(assignment_indices)
    qs = _class_grid(source_masks, source_probability_rows, assignment_indices)
    qt = _class_grid(sink_masks, sink_probability_rows, assignment_indices)
    ps = superset_zeta_rows(qs, inplace=True)
    pt = superset_zeta_rows(qt, inplace=True)
    signs = -parity_array(q).astype(np.float64)
    signs[0] = 0.0
    prod = ps * pt
    points = prod.shape[0]
    return np.array(
        [float(np.dot(signs, prod[s])) for s in range(points)], dtype=np.float64
    )


def _pairs_r_grid(
    source_masks: np.ndarray,
    sink_masks: np.ndarray,
    source_probability_rows: np.ndarray,
    sink_probability_rows: np.ndarray,
    assignment_indices: Sequence[int],
) -> np.ndarray:
    """Per-point ``r_{E'}`` via the pairs strategy, one value per grid row."""
    restricted_s = restrict_masks(source_masks, assignment_indices)
    restricted_t = restrict_masks(sink_masks, assignment_indices)
    values_s, inverse_s = np.unique(restricted_s, return_inverse=True)
    values_t, inverse_t = np.unique(restricted_t, return_inverse=True)
    hit = ((values_s[:, None] & values_t[None, :]) != 0).astype(np.float64)
    points = source_probability_rows.shape[0]
    out = np.empty(points, dtype=np.float64)
    for s in range(points):
        qs = np.bincount(
            inverse_s, weights=source_probability_rows[s], minlength=len(values_s)
        )
        qt = np.bincount(
            inverse_t, weights=sink_probability_rows[s], minlength=len(values_t)
        )
        out[s] = float(qs @ hit @ qt)
    return out


def _r_grid(
    source: RealizationArray,
    sink: RealizationArray,
    assignment_indices: Sequence[int],
    source_probability_rows: np.ndarray,
    sink_probability_rows: np.ndarray,
    strategy: str,
) -> np.ndarray:
    """Grid twin of :func:`repro.core.accumulate.accumulate` — same
    strategy resolution, same per-point arithmetic."""
    if strategy == "auto":
        strategy = "zeta" if len(assignment_indices) <= 12 else "pairs"
    if strategy == "zeta":
        return _zeta_r_grid(
            source.masks,
            sink.masks,
            source_probability_rows,
            sink_probability_rows,
            assignment_indices,
        )
    if strategy == "pairs":
        return _pairs_r_grid(
            source.masks,
            sink.masks,
            source_probability_rows,
            sink_probability_rows,
            assignment_indices,
        )
    raise ReproValueError(f"unknown accumulation strategy {strategy!r}")


# -- the sweep specification ----------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """What varies across the sweep points.

    Construct through the classmethods:

    * :meth:`availability` — one uniform link availability per point
      (every link's failure probability becomes ``1 - value``);
    * :meth:`failure_scale` — every link's base failure probability
      multiplied by a per-point factor;
    * :meth:`overrides` — per-point ``{link_index: failure_probability}``
      patches on top of the base probabilities;
    * :meth:`demand_rates` — the probabilities stay fixed and the demand
      ``d`` varies (arrays are rebuilt per rate, but shared assignment
      tuples reuse cached columns).
    """

    kind: str
    values: tuple

    @classmethod
    def availability(cls, values: Sequence[float]) -> "SweepSpec":
        points = tuple(float(v) for v in values)
        if not points:
            raise ReproValueError("sweep needs at least one point")
        for v in points:
            if not 0.0 < v <= 1.0:
                raise ReproValueError(f"availability {v} outside (0, 1]")
        return cls(kind="availability", values=points)

    @classmethod
    def failure_scale(cls, factors: Sequence[float]) -> "SweepSpec":
        points = tuple(float(f) for f in factors)
        if not points:
            raise ReproValueError("sweep needs at least one point")
        for f in points:
            if f < 0.0:
                raise ReproValueError(f"failure scale factor {f} is negative")
        return cls(kind="failure-scale", values=points)

    @classmethod
    def overrides(cls, maps: Sequence[Mapping[int, float]]) -> "SweepSpec":
        points = tuple(dict(m) for m in maps)
        if not points:
            raise ReproValueError("sweep needs at least one point")
        return cls(kind="overrides", values=points)

    @classmethod
    def demand_rates(cls, rates: Sequence[int]) -> "SweepSpec":
        points = tuple(int(r) for r in rates)
        if not points:
            raise ReproValueError("sweep needs at least one point")
        return cls(kind="demand", values=points)

    def __len__(self) -> int:
        return len(self.values)

    def failure_matrix(self, net: FlowNetwork) -> np.ndarray:
        """The ``(points, num_links)`` failure-probability grid.

        Only defined for the probability kinds; validates every entry
        into ``[0, 1)`` with :class:`ReproValueError`.
        """
        if self.kind == "demand":
            raise ReproValueError("demand sweeps do not define a failure matrix")
        base = np.asarray(net.failure_probabilities(), dtype=np.float64)
        m = len(base)
        rows: list[np.ndarray] = []
        if self.kind == "availability":
            for v in self.values:
                rows.append(np.full(m, 1.0 - v, dtype=np.float64))
        elif self.kind == "failure-scale":
            for f in self.values:
                row = base * f
                if row.size and float(row.max()) >= 1.0:
                    raise ReproValueError(
                        f"failure scale factor {f} pushes a link failure "
                        "probability to 1 or beyond"
                    )
                rows.append(row)
        else:  # overrides
            for mapping in self.values:
                row = base.copy()
                for index, p in mapping.items():
                    i = int(index)
                    if not 0 <= i < m:
                        raise ReproValueError(
                            f"override link index {i} out of range for a "
                            f"network with {m} links"
                        )
                    p = float(p)
                    if not 0.0 <= p < 1.0:
                        raise ReproValueError(
                            f"override failure probability {p} outside [0, 1)"
                        )
                    row[i] = p
                rows.append(row)
        return np.array(rows, dtype=np.float64).reshape(len(self.values), m)

    def point_network(self, net: FlowNetwork, index: int) -> FlowNetwork:
        """The network a pointwise call would see at sweep point ``index``.

        The bit-identity property suite compares
        ``compute_reliability_sweep(net, ...).results[i]`` against
        ``bottleneck_reliability(spec.point_network(net, i), ...)``.
        """
        if self.kind == "demand":
            return net
        row = self.failure_matrix(net)[index]
        return net.with_failure_probabilities([float(p) for p in row])


@dataclass(frozen=True)
class SweepResult:
    """An evaluated sweep: one :class:`ReliabilityResult` per point."""

    kind: str
    xs: tuple
    results: tuple[ReliabilityResult, ...]
    #: Max-flow solves spent by this call (0 on a fully warm cache).
    flow_calls: int
    #: :meth:`ArrayCache.stats` delta accumulated by this call.
    cache_stats: dict[str, int]

    @property
    def values(self) -> list[float]:
        return [r.value for r in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ReliabilityResult]:
        return iter(self.results)


def _resolve_split(
    net: FlowNetwork,
    demand: FlowDemand,
    cut: Sequence[int] | None,
    max_cut_size: int,
) -> SideSplit:
    with span("sweep.cut_search", given=cut is not None):
        if cut is None:
            split = find_bottleneck(
                net, demand.source, demand.sink, max_size=max_cut_size
            )
            if split is None:
                raise DecompositionError(
                    f"no admissible bottleneck cut of size <= {max_cut_size} found"
                )
            return split
        return verify_bottleneck(net, demand.source, demand.sink, cut)


def compute_reliability_sweep(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    sweep: SweepSpec,
    cut: Sequence[int] | None = None,
    solver: str | MaxFlowSolver | None = None,
    strategy: str = "auto",
    prune: bool = True,
    max_cut_size: int = 3,
    workers: int | None = None,
    screen: bool = True,
    incremental: bool | None = None,
    block_bits: int | None = None,
    cache: ArrayCache | None = None,
) -> SweepResult:
    """Reliability at every sweep point for the cost of ~one array build.

    For the probability kinds the bottleneck cut, the assignment set and
    both realization arrays are computed once (through ``cache``; a
    private in-memory :class:`ArrayCache` is used when none is given) and
    Eq. 2 / Eq. 3 are evaluated for the whole failure grid in batched
    vectorized passes.  Every point's value and ``details`` are
    bit-identical to a fresh :func:`bottleneck_reliability` call on
    :meth:`SweepSpec.point_network` — only the solve accounting differs
    (the per-point ``flow_calls`` is 0; this call's total is reported on
    the :class:`SweepResult`).

    Demand sweeps loop the full bottleneck pipeline per rate with the
    shared cache, so assignment tuples common to several rates are built
    once.

    Parameters mirror :func:`bottleneck_reliability`; ``demand.rate`` is
    ignored (and may be any valid rate) for ``kind="demand"`` sweeps.
    """
    the_cache = cache if cache is not None else ArrayCache()
    before = the_cache.stats()
    with span("sweep.run", kind=sweep.kind, points=len(sweep)):
        if sweep.kind == "demand":
            result = _demand_sweep(
                net,
                demand,
                sweep=sweep,
                cut=cut,
                solver=solver,
                strategy=strategy,
                prune=prune,
                max_cut_size=max_cut_size,
                workers=workers,
                screen=screen,
                incremental=incremental,
                block_bits=block_bits,
                cache=the_cache,
            )
        else:
            result = _probability_sweep(
                net,
                demand,
                sweep=sweep,
                cut=cut,
                solver=solver,
                strategy=strategy,
                prune=prune,
                max_cut_size=max_cut_size,
                workers=workers,
                screen=screen,
                incremental=incremental,
                block_bits=block_bits,
                cache=the_cache,
            )
    after = the_cache.stats()
    delta = {key: after[key] - before[key] for key in after}
    return SweepResult(
        kind=result.kind,
        xs=result.xs,
        results=result.results,
        flow_calls=result.flow_calls,
        cache_stats=delta,
    )


def _demand_sweep(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    sweep: SweepSpec,
    cut: Sequence[int] | None,
    solver: str | MaxFlowSolver | None,
    strategy: str,
    prune: bool,
    max_cut_size: int,
    workers: int | None,
    screen: bool,
    incremental: bool | None,
    block_bits: int | None,
    cache: ArrayCache,
) -> SweepResult:
    from repro.core.bottleneck import bottleneck_reliability  # local: avoids cycle

    # One structural cut search serves every rate (admissibility does
    # not depend on the demand); each pointwise call then verifies it,
    # which yields the same split a fresh discovery would.
    split = _resolve_split(net, demand, cut, max_cut_size)
    results: list[ReliabilityResult] = []
    flow_calls = 0
    for rate in sweep.values:
        point = bottleneck_reliability(
            net,
            FlowDemand(demand.source, demand.sink, rate),
            cut=split.cut,
            solver=solver,
            strategy=strategy,
            prune=prune,
            max_cut_size=max_cut_size,
            workers=workers,
            screen=screen,
            incremental=incremental,
            block_bits=block_bits,
            cache=cache,
        )
        flow_calls += point.flow_calls
        results.append(point)
    return SweepResult(
        kind=sweep.kind,
        xs=sweep.values,
        results=tuple(results),
        flow_calls=flow_calls,
        cache_stats={},
    )


def _probability_sweep(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    sweep: SweepSpec,
    cut: Sequence[int] | None,
    solver: str | MaxFlowSolver | None,
    strategy: str,
    prune: bool,
    max_cut_size: int,
    workers: int | None,
    screen: bool,
    incremental: bool | None,
    block_bits: int | None,
    cache: ArrayCache,
) -> SweepResult:
    demand.validate_against(net)
    failure_grid = sweep.failure_matrix(net)  # validates the grid up front
    num_points = len(sweep)
    use_incremental = resolve_incremental(solver, incremental)
    split = _resolve_split(net, demand, cut, max_cut_size)
    cut_links = split.cut
    k = len(cut_links)
    capacities = [net.link(i).capacity for i in cut_links]
    with span("sweep.assignments", k=k, demand=demand.rate):
        assignments = enumerate_assignments(capacities, demand.rate)
        count(ASSIGNMENTS_ENUMERATED, len(assignments))
    base_details = {
        "cut": tuple(cut_links),
        "alpha": split.alpha,
        "num_assignments": len(assignments),
        "source_side_links": len(split.source_side.link_map),
        "sink_side_links": len(split.sink_side.link_map),
    }
    if not assignments:
        # Mirrors the pointwise early return (c(cut) < d): identical
        # details at every point, no arrays, no solves.
        zero = tuple(
            ReliabilityResult(
                value=0.0,
                method="bottleneck",
                details={**base_details, "reason": "cut capacity below demand"},
            )
            for _ in range(num_points)
        )
        return SweepResult(
            kind=sweep.kind,
            xs=sweep.values,
            results=zero,
            flow_calls=0,
            cache_stats={},
        )

    with span(
        "sweep.arrays",
        source_links=len(split.source_side.link_map),
        sink_links=len(split.sink_side.link_map),
        assignments=len(assignments),
    ):
        source_array = cached_side_array(
            split.source_side,
            role="source",
            terminal=demand.source,
            ports=split.source_ports,
            assignments=assignments,
            demand=demand.rate,
            solver=solver,
            prune=prune,
            screen=screen,
            workers=workers,
            incremental=use_incremental,
            block_bits=block_bits,
            cache=cache,
        )
        sink_array = cached_side_array(
            split.sink_side,
            role="sink",
            terminal=demand.sink,
            ports=split.sink_ports,
            assignments=assignments,
            demand=demand.rate,
            solver=solver,
            prune=prune,
            screen=screen,
            workers=workers,
            incremental=use_incremental,
            block_bits=block_bits,
            cache=cache,
        )

    source_columns = list(split.source_side.link_map)
    sink_columns = list(split.sink_side.link_map)
    source_fail = failure_grid[:, source_columns]
    sink_fail = failure_grid[:, sink_columns]
    cut_fail = failure_grid[:, list(cut_links)]

    check_enumerable(k)
    classes = classify_by_support(assignments, k)
    configurations = len(source_array.masks) + len(sink_array.masks)
    widest = max(
        len(split.source_side.link_map), len(split.sink_side.link_map), k
    )
    batch = max(1, _MAX_GRID_ENTRIES >> widest)
    results: list[ReliabilityResult] = []
    with span(
        "sweep.accumulate", points=num_points, strategy=strategy, patterns=1 << k
    ):
        for start in range(0, num_points, batch):
            stop = min(num_points, start + batch)
            source_rows = probability_grid(source_fail[start:stop])
            sink_rows = probability_grid(sink_fail[start:stop])
            pattern_rows = probability_grid(cut_fail[start:stop])
            r_grids: dict[tuple[int, ...], np.ndarray] = {}
            for local in range(stop - start):
                terms: list[float] = []
                used: set[tuple[int, ...]] = set()
                for pattern, supported in classes.items():
                    if not supported:
                        continue
                    p_pattern = float(pattern_rows[local, pattern])
                    if p_pattern == 0.0:
                        continue
                    r_vector = r_grids.get(supported)
                    if r_vector is None:
                        r_vector = _r_grid(
                            source_array,
                            sink_array,
                            supported,
                            source_rows,
                            sink_rows,
                            strategy,
                        )
                        r_grids[supported] = r_vector
                    used.add(supported)
                    terms.append(p_pattern * float(r_vector[local]))
                details = {
                    **base_details,
                    "accumulation_strategy": strategy,
                    "distinct_classes": len(used),
                    "incremental": use_incremental,
                }
                results.append(
                    ReliabilityResult(
                        value=prob_fsum(terms),
                        method="bottleneck",
                        flow_calls=0,
                        configurations=configurations,
                        details=details,
                    )
                )
    return SweepResult(
        kind=sweep.kind,
        xs=sweep.values,
        results=tuple(results),
        flow_calls=source_array.flow_calls + sink_array.flow_calls,
        cache_stats={},
    )


# -- request coalescing: the batch planner ---------------------------------


@dataclass(frozen=True)
class BatchPlan:
    """One merged sweep covering several submitted query points.

    ``net`` is the first member's network; every member is expressed as
    one ``overrides`` sweep point carrying its *full* failure vector, so
    :meth:`SweepSpec.point_network` reconstructs each member's network
    exactly (the topologies are fingerprint-identical by construction).
    """

    #: Base network of the group (first member's).
    net: FlowNetwork
    #: Shared demand (same source, sink and rate for every member).
    demand: FlowDemand
    #: ``kind="overrides"`` spec with one point per member, in
    #: ``indices`` order.
    spec: SweepSpec
    #: Positions of the members in the submitted query sequence.
    indices: tuple[int, ...]
    #: The merge key: topology fingerprint + terminals + rate.
    key: str


@dataclass(frozen=True)
class BatchResult:
    """An evaluated batch, scattered back to submission order."""

    #: One result per submitted query, aligned with the input sequence.
    results: tuple[ReliabilityResult, ...]
    #: Max-flow solves spent by the whole batch (0 on a warm cache).
    flow_calls: int
    #: The merged plans, in first-appearance order.
    plans: tuple[BatchPlan, ...]
    #: Solves spent per plan (aligned with ``plans``).
    plan_flow_calls: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.results)


def _batch_key(net: FlowNetwork, demand: FlowDemand) -> str:
    return "|".join(
        (
            network_fingerprint(net),
            repr(demand.source),
            repr(demand.sink),
            str(int(demand.rate)),
        )
    )


def plan_batch(
    queries: Sequence[tuple[FlowNetwork, FlowDemand]],
) -> list[BatchPlan]:
    """Merge query points into per-topology sweep plans.

    Queries sharing a topology fingerprint, terminals and demand rate
    collapse into **one** plan — one cut search, one cached array
    build, one vectorized Eq. 2/3 grid — no matter how their failure
    probabilities differ: each member becomes one ``overrides`` sweep
    point carrying its full failure vector.  This is the serving
    daemon's coalescing mechanism, exposed as a plain function so the
    merge is unit-testable without sockets.

    Plans appear in first-appearance order; ``BatchPlan.indices`` maps
    each plan's sweep points back to positions in ``queries``.
    """
    if not queries:
        return []
    with span("sweep.plan", queries=len(queries)):
        groups: dict[str, list[int]] = {}
        for index, (net, demand) in enumerate(queries):
            demand.validate_against(net)
            groups.setdefault(_batch_key(net, demand), []).append(index)
        plans: list[BatchPlan] = []
        for key, indices in groups.items():
            base_net, base_demand = queries[indices[0]]
            rows: list[dict[int, float]] = []
            for index in indices:
                member_net, _ = queries[index]
                rows.append(
                    {
                        i: float(p)
                        for i, p in enumerate(member_net.failure_probabilities())
                    }
                )
            plans.append(
                BatchPlan(
                    net=base_net,
                    demand=base_demand,
                    spec=SweepSpec.overrides(rows),
                    indices=tuple(indices),
                    key=key,
                )
            )
    return plans


def evaluate_batch(
    queries: Sequence[tuple[FlowNetwork, FlowDemand]],
    *,
    cut: Sequence[int] | None = None,
    solver: str | MaxFlowSolver | None = None,
    strategy: str = "auto",
    prune: bool = True,
    max_cut_size: int = 3,
    workers: int | None = None,
    screen: bool = True,
    incremental: bool | None = None,
    block_bits: int | None = None,
    cache: ArrayCache | None = None,
) -> BatchResult:
    """Answer every query through the merged plans of :func:`plan_batch`.

    One :func:`compute_reliability_sweep` runs per plan against the
    shared ``cache``; results are scattered back to submission order,
    each bit-identical to a fresh :func:`bottleneck_reliability` call on
    the member's own network (the sweep engine's pinned property).  A
    plan that cannot decompose raises — callers needing per-query
    isolation (the serving planner) run plans individually.
    """
    plans = plan_batch(queries)
    the_cache = cache if cache is not None else ArrayCache()
    scattered: list[ReliabilityResult | None] = [None] * len(queries)
    plan_flow_calls: list[int] = []
    total = 0
    with span("sweep.batch", queries=len(queries), plans=len(plans)):
        for plan in plans:
            swept = compute_reliability_sweep(
                plan.net,
                plan.demand,
                sweep=plan.spec,
                cut=cut,
                solver=solver,
                strategy=strategy,
                prune=prune,
                max_cut_size=max_cut_size,
                workers=workers,
                screen=screen,
                incremental=incremental,
                block_bits=block_bits,
                cache=the_cache,
            )
            plan_flow_calls.append(swept.flow_calls)
            total += swept.flow_calls
            for position, result in zip(plan.indices, swept.results):
                scattered[position] = result
    results = tuple(r for r in scattered if r is not None)
    if len(results) != len(queries):  # pragma: no cover - plan_batch covers all
        raise ReproValueError("batch planning failed to cover every query")
    return BatchResult(
        results=results,
        flow_calls=total,
        plans=tuple(plans),
        plan_flow_calls=tuple(plan_flow_calls),
    )
