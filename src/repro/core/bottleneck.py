"""The paper's headline algorithm (§III + §IV).

``bottleneck_reliability`` computes the exact flow reliability of a
network with a set of α-bottleneck links in
``O(2^{α|E|} |V||E|)`` time (for constant ``k`` and ``d``):

1. find (or verify) the bottleneck cut and split into ``G_s`` / ``G_t``
   (:mod:`repro.graph.cuts`, :mod:`repro.graph.transforms`);
2. enumerate the assignment set ``D`` (§III-B,
   :mod:`repro.core.assignments`);
3. build both realization arrays (§III-C, :mod:`repro.core.arrays`) at
   ``|D| · 2^{|E_side|}`` max-flow solves each;
4. for each of the ``2^k`` bottleneck survival patterns ``E'``, weigh
   the ACCUMULATION result over the supported class by the pattern
   probability ``p_{E'}`` (Eq. 2) and sum (Eq. 3,
   :mod:`repro.core.accumulate`).

Model note: the assignment machinery routes every sub-stream *forward*
across the cut.  For directed cut links (all the library's generators)
this is exact.  An undirected cut link admits pathological networks
where flow crosses the cut backwards to shortcut through the far side;
such routings are outside the paper's model (sub-streams are pushed
source-to-sink) and are not counted.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.arrays import build_side_array
from repro.core.assignments import (
    classify_by_support,
    enumerate_assignments,
)
from repro.core.demand import FlowDemand
from repro.core.result import ReliabilityResult
from repro.core.summation import prob_fsum
from repro.exceptions import DecompositionError, ReproValueError
from repro.flow.base import MaxFlowSolver
from repro.flow.incremental import resolve_incremental
from repro.graph.cuts import find_bottleneck, verify_bottleneck
from repro.graph.network import FlowNetwork
from repro.graph.transforms import SideSplit
from repro.obs.recorder import ASSIGNMENTS_ENUMERATED, count, span
from repro.probability.enumeration import check_enumerable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sweep import ArrayCache

__all__ = ["bottleneck_reliability", "pattern_probabilities", "pattern_probability"]


def _validate_cut_indices(net: FlowNetwork, cut: Sequence[int]) -> None:
    """Eq. 2 inputs must name real links — reject instead of mis-indexing."""
    for index in cut:
        try:
            i = operator.index(index)
        except TypeError as exc:
            raise ReproValueError(
                f"cut link index {index!r} is not an integer"
            ) from exc
        if not 0 <= i < net.num_links:
            raise ReproValueError(
                f"cut link index {i} out of range for a network with "
                f"{net.num_links} links"
            )


def pattern_probability(net: FlowNetwork, cut: Sequence[int], pattern: int) -> float:
    """Eq. (2): probability that exactly the cut links in ``pattern``
    survive (bit ``i`` of ``pattern`` refers to ``cut[i]``)."""
    _validate_cut_indices(net, cut)
    k = len(cut)
    check_enumerable(k)
    if not 0 <= pattern < 1 << k:
        raise ReproValueError(
            f"pattern {pattern} out of range for a {k}-link cut "
            f"(need 0 <= pattern < 2^{k})"
        )
    value = 1.0
    for i, index in enumerate(cut):
        link = net.link(index)
        value *= link.availability if (pattern >> i) & 1 else link.failure_probability
    return value


def pattern_probabilities(net: FlowNetwork, cut: Sequence[int]) -> np.ndarray:
    """Eq. (2) for all ``2^k`` survival patterns at once.

    Built by the same doubling scheme as
    :func:`repro.probability.configuration_probabilities`: one
    concatenation per cut link, in cut order.  Entry ``pattern`` is the
    product ``((1.0 * f_0) * f_1) * ...`` with exactly the left-to-right
    associativity of :func:`pattern_probability`, so every entry is
    bit-identical to the scalar — not merely close.
    """
    _validate_cut_indices(net, cut)
    check_enumerable(len(cut))
    table = np.ones(1, dtype=np.float64)
    for index in cut:
        link = net.link(index)
        table = np.concatenate(
            [table * link.failure_probability, table * link.availability]
        )
    return table


def bottleneck_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    cut: Sequence[int] | None = None,
    solver: str | MaxFlowSolver | None = None,
    strategy: str = "auto",
    prune: bool = True,
    max_cut_size: int = 3,
    workers: int | None = None,
    screen: bool = True,
    incremental: bool | None = None,
    block_bits: int | None = None,
    cache: "ArrayCache | None" = None,
) -> ReliabilityResult:
    """Exact reliability via the bottleneck decomposition.

    Parameters
    ----------
    net, demand:
        The problem instance.
    cut:
        Bottleneck link indices.  When omitted the best admissible cut
        of size up to ``max_cut_size`` is discovered automatically;
        when given it is verified (minimality + two components).
    solver:
        Max-flow solver for the realization arrays.
    strategy:
        ACCUMULATION strategy: ``"auto"``, ``"zeta"`` or ``"pairs"``.
    prune:
        Monotone pruning inside the realization arrays.
    workers:
        ``None`` (default) keeps the serial §III-C builder with its
        exact historical ``flow_calls`` accounting.  Any ``workers >= 1``
        routes both side arrays through
        :func:`repro.core.engine.build_realization_arrays` — chunked,
        optionally multi-process, bit-identical masks — and enables the
        pre-solve ``screen``.
    screen:
        Engine path only: cheap certain-negative screens (alive port
        capacity / connectivity) that skip max-flow solves without
        changing the result.  Ignored when ``workers`` is ``None``.
    incremental:
        Walk the realization lattices in Gray-code order with flow
        repair instead of cold-solving every entry (``None`` = auto: on
        whenever the solver supports the warm-start contract; see
        :mod:`repro.flow.incremental`).  Bit-identical masks and value;
        only the solve accounting changes.
    block_bits:
        Route the realization builds through the bit-parallel block
        kernel (:mod:`repro.core.bitplane`) with ``2^block_bits``-sized
        blocks — serial, with any ``workers`` count (each chunk runs
        the kernel over its sub-lattice), or under a ``cache``.
        Bit-identical masks, value and ``details``; only the solve
        accounting moves.  ``None`` (default) keeps the scalar kernels.
    cache:
        A :class:`repro.core.sweep.ArrayCache`.  When given, both side
        arrays are resolved per-assignment-column through the
        content-addressed cache (serial or engine build for the misses,
        per ``workers``): a warm call spends zero max-flow solves and
        reports ``flow_calls == 0``.  Value and ``details`` are
        unchanged; the cache traffic of this call is reported under
        ``details["array_cache"]``.

    Raises
    ------
    DecompositionError
        If no admissible bottleneck cut exists (or the given one fails
        verification).
    """
    demand.validate_against(net)
    use_incremental = resolve_incremental(solver, incremental)
    from repro.core.bitplane import resolve_block_bits  # local: avoids cycle

    block_bits = resolve_block_bits(block_bits)
    with span("bottleneck.cut_search", given=cut is not None):
        if cut is None:
            split = find_bottleneck(
                net, demand.source, demand.sink, max_size=max_cut_size
            )
            if split is None:
                raise DecompositionError(
                    f"no admissible bottleneck cut of size <= {max_cut_size} found"
                )
        else:
            split = verify_bottleneck(net, demand.source, demand.sink, cut)

    cut_links = split.cut
    k = len(cut_links)
    capacities = [net.link(i).capacity for i in cut_links]
    with span("bottleneck.assignments", k=k, demand=demand.rate):
        assignments = enumerate_assignments(capacities, demand.rate)
        count(ASSIGNMENTS_ENUMERATED, len(assignments))
    base_details = {
        "cut": tuple(cut_links),
        "alpha": split.alpha,
        "num_assignments": len(assignments),
        "source_side_links": len(split.source_side.link_map),
        "sink_side_links": len(split.sink_side.link_map),
    }
    if not assignments:
        # The cut cannot carry the demand even fully alive (the k = 1
        # case of this is the paper's "c(e') < d => trivially zero").
        return ReliabilityResult(
            value=0.0,
            method="bottleneck",
            details={**base_details, "reason": "cut capacity below demand"},
        )

    engine_stats: dict[str, object] | None = None
    cache_delta: dict[str, int] | None = None
    if cache is not None:
        from repro.core.sweep import cached_side_array  # local: avoids cycle

        before = cache.stats()
        with span("bottleneck.arrays", cached=True, workers=workers or 0):
            source_array = cached_side_array(
                split.source_side,
                role="source",
                terminal=demand.source,
                ports=split.source_ports,
                assignments=assignments,
                demand=demand.rate,
                solver=solver,
                prune=prune,
                screen=screen,
                workers=workers,
                incremental=use_incremental,
                block_bits=block_bits,
                cache=cache,
            )
            sink_array = cached_side_array(
                split.sink_side,
                role="sink",
                terminal=demand.sink,
                ports=split.sink_ports,
                assignments=assignments,
                demand=demand.rate,
                solver=solver,
                prune=prune,
                screen=screen,
                workers=workers,
                incremental=use_incremental,
                block_bits=block_bits,
                cache=cache,
            )
        after = cache.stats()
        cache_delta = {key: after[key] - before[key] for key in after}
    elif workers is None and block_bits is not None:
        from repro.core.bitplane import build_side_array_blocked  # local: cycle

        with span(
            "bottleneck.source_array",
            links=len(split.source_side.link_map),
            assignments=len(assignments),
        ):
            source_array = build_side_array_blocked(
                split.source_side,
                role="source",
                terminal=demand.source,
                ports=split.source_ports,
                assignments=assignments,
                demand=demand.rate,
                solver=solver,
                prune=prune,
                screen=screen,
                incremental=use_incremental,
                block_bits=block_bits,
            )
        with span(
            "bottleneck.sink_array",
            links=len(split.sink_side.link_map),
            assignments=len(assignments),
        ):
            sink_array = build_side_array_blocked(
                split.sink_side,
                role="sink",
                terminal=demand.sink,
                ports=split.sink_ports,
                assignments=assignments,
                demand=demand.rate,
                solver=solver,
                prune=prune,
                screen=screen,
                incremental=use_incremental,
                block_bits=block_bits,
            )
    elif workers is None:
        with span(
            "bottleneck.source_array",
            links=len(split.source_side.link_map),
            assignments=len(assignments),
        ):
            source_array = build_side_array(
                split.source_side,
                role="source",
                terminal=demand.source,
                ports=split.source_ports,
                assignments=assignments,
                demand=demand.rate,
                solver=solver,
                prune=prune,
                incremental=use_incremental,
            )
        with span(
            "bottleneck.sink_array",
            links=len(split.sink_side.link_map),
            assignments=len(assignments),
        ):
            sink_array = build_side_array(
                split.sink_side,
                role="sink",
                terminal=demand.sink,
                ports=split.sink_ports,
                assignments=assignments,
                demand=demand.rate,
                solver=solver,
                prune=prune,
                incremental=use_incremental,
            )
    else:
        from repro.core.engine import build_realization_arrays  # local: engine-path only

        with span("bottleneck.arrays", workers=workers, screen=screen):
            source_array, sink_array, engine_stats = build_realization_arrays(
                split,
                source=demand.source,
                sink=demand.sink,
                assignments=assignments,
                demand=demand.rate,
                solver=solver,
                prune=prune,
                screen=screen,
                workers=workers,
                incremental=use_incremental,
                block_bits=block_bits,
            )

    # Eq. (3): sum over the 2^k bottleneck survival patterns.  r_{E'}
    # depends only on the supported class, so identical classes share
    # one accumulation.
    from repro.core.accumulate import accumulate  # local: avoids cycle at import

    check_enumerable(k)
    with span("bottleneck.accumulate", patterns=1 << k, strategy=strategy):
        classes = classify_by_support(assignments, k)
        p_patterns = pattern_probabilities(net, cut_links)
        cache: dict[tuple[int, ...], float] = {}
        terms: list[float] = []
        for pattern, supported in classes.items():
            if not supported:
                continue
            p_pattern = float(p_patterns[pattern])
            if p_pattern == 0.0:
                continue
            r = cache.get(supported)
            if r is None:
                r = accumulate(source_array, sink_array, supported, strategy=strategy)
                cache[supported] = r
            terms.append(p_pattern * r)

    details = {
        **base_details,
        "accumulation_strategy": strategy,
        "distinct_classes": len(cache),
        "incremental": use_incremental,
    }
    if engine_stats is not None:
        details["engine"] = engine_stats
    if cache_delta is not None:
        details["array_cache"] = cache_delta
    return ReliabilityResult(
        value=prob_fsum(terms),
        method="bottleneck",
        flow_calls=source_array.flow_calls + sink_array.flow_calls,
        configurations=len(source_array.masks) + len(sink_array.masks),
        details=details,
    )
