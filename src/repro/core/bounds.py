"""Cheap reliability bounds.

Exact reliability is exponential; these bounds are polynomial (up to
small enumerations) and bracket it:

* **Upper bound — cut survival.**  For any s-t cut ``C``, the demand is
  only met when the *alive* capacity of ``C`` reaches ``d``, so
  ``R <= P(alive capacity of C >= d)``.  Each cut is evaluated exactly
  by enumerating its own ``2^|C|`` survival patterns (cuts are small);
  the bound is the minimum over the cuts considered.

* **Lower bound — route families.**  Any subgraph ``H`` that admits the
  demand gives ``P(all of H alive) <= R``.  Collecting several such
  route families ``H_1..H_r`` (greedy: repeatedly take the links used
  by a max flow, then forbid them) and applying inclusion–exclusion
  over "family fully alive" events — whose intersections are just
  products over unions of links — tightens the bound beyond any single
  family.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.summation import prob_fsum
from repro.exceptions import ReproError
from repro.flow.base import MaxFlowSolver, get_solver, max_flow
from repro.flow.mincut import min_cut_links
from repro.graph.cuts import minimal_st_cuts, minimum_cardinality_cut
from repro.graph.network import FlowNetwork
from repro.obs.recorder import span
from repro.probability.enumeration import check_enumerable

__all__ = ["cut_upper_bound", "route_lower_bound", "reliability_bounds"]


def _cut_survival_probability(net: FlowNetwork, cut: tuple[int, ...], demand: int) -> float:
    """``P(alive capacity of the cut >= demand)`` exactly."""
    k = len(cut)
    check_enumerable(k)
    caps = [net.link(i).capacity for i in cut]
    probs = [net.link(i).failure_probability for i in cut]
    terms: list[float] = []
    for pattern in range(1 << k):  # repro: noqa[RR109] closed-form term per pattern, nothing to repair
        alive_capacity = sum(c for i, c in enumerate(caps) if (pattern >> i) & 1)
        if alive_capacity < demand:
            continue
        p = 1.0
        for i in range(k):
            p *= (1.0 - probs[i]) if (pattern >> i) & 1 else probs[i]
        terms.append(p)
    return prob_fsum(terms)


def cut_upper_bound(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    max_cut_size: int = 3,
    max_cuts: int = 32,
) -> float:
    """Minimum cut-survival probability over discovered cuts.

    Considers the minimum-cardinality cut, the capacity-min-cut (from a
    max-flow run on the all-alive network) and every minimal cut up to
    ``max_cut_size`` (capped at ``max_cuts``).  Always a valid upper
    bound; more cuts only tighten it.
    """
    demand.validate_against(net)
    with span("bounds.cut_upper", max_cut_size=max_cut_size, max_cuts=max_cuts):
        cuts: set[tuple[int, ...]] = set()
        card_cut = minimum_cardinality_cut(net, demand.source, demand.sink)
        if card_cut is None:
            return 0.0  # terminals disconnected outright
        cuts.add(tuple(card_cut))
        result = max_flow(net, demand.source, demand.sink)
        if result.value < demand.rate:
            return 0.0
        cuts.add(min_cut_links(net, result))
        for cut in minimal_st_cuts(net, demand.source, demand.sink, max_cut_size, limit=max_cuts):
            cuts.add(tuple(cut))
        bound = 1.0
        for cut in cuts:
            if not cut:
                continue
            bound = min(bound, _cut_survival_probability(net, cut, demand.rate))
        return bound


def route_lower_bound(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    max_families: int = 4,
    solver: str | MaxFlowSolver | None = None,
) -> float:
    """Inclusion–exclusion over greedily-collected route families.

    Each family is the link set used by one feasible flow; successive
    families are found after deleting all previously used links, so the
    families are link-disjoint (their alive-events are independent, but
    the bound does not rely on that — intersections are computed as
    products over link unions, which is exact for any overlap).
    """
    demand.validate_against(net)
    if max_families < 1:
        raise ReproError("need at least one route family")
    with span("bounds.route_lower", max_families=max_families):
        return _route_lower_bound(net, demand, max_families, solver)


def _route_lower_bound(
    net: FlowNetwork,
    demand: FlowDemand,
    max_families: int,
    solver: str | MaxFlowSolver | None,
) -> float:
    engine = get_solver(solver)
    oracle = FeasibilityOracle(net, demand.source, demand.sink, demand.rate, solver=engine)
    all_links = (1 << net.num_links) - 1
    forbidden = 0
    families: list[int] = []
    while len(families) < max_families:
        alive = all_links & ~forbidden
        if not oracle.feasible(alive):
            break
        # Demand-limited solve: the family is the support of a flow of
        # exactly d units, not of a maximal flow (which would gobble
        # every path into one family).
        used = oracle.used_links(alive, limit=demand.rate)
        family = 0
        for index in used:
            family |= 1 << index
        if family == 0:
            break
        families.append(family)
        forbidden |= family

    if not families:
        return 0.0

    availability = [link.availability for link in net.links()]

    def all_alive_probability(mask: int) -> float:
        p = 1.0
        bits = mask
        while bits:
            low = bits & -bits
            p *= availability[low.bit_length() - 1]
            bits ^= low
        return p

    # Inclusion–exclusion over subsets of families.  The expansion
    # alternates signs, so the terms are fsum'd: cancellation under
    # naive accumulation is exactly what RR102 exists to prevent.
    terms: list[float] = []
    r = len(families)
    for size in range(1, r + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for chosen in combinations(range(r), size):
            union = 0
            for j in chosen:
                union |= families[j]
            terms.append(sign * all_alive_probability(union))
    return prob_fsum(terms)


def reliability_bounds(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    max_cut_size: int = 3,
    max_families: int = 4,
    solver: str | MaxFlowSolver | None = None,
) -> tuple[float, float]:
    """``(lower, upper)`` bracket on the reliability."""
    lower = route_lower_bound(net, demand, max_families=max_families, solver=solver)
    upper = cut_upper_bound(net, demand, max_cut_size=max_cut_size)
    if lower > upper + 1e-9:
        raise ReproError(
            f"bound inversion: lower {lower} > upper {upper} (library bug)"
        )
    return lower, max(lower, upper)
