"""Flow demands — the paper's ``D = (s, t, d)`` triple."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DemandError
from repro.graph.network import FlowNetwork, Node

__all__ = ["FlowDemand"]


@dataclass(frozen=True)
class FlowDemand:
    """A request to deliver a stream of bit-rate ``rate`` from ``source``
    to ``sink``; the stream divides into ``rate`` unit-rate sub-streams
    that may travel different paths.

    ``rate`` must be a positive integer (the paper's ``d``).
    """

    source: Node
    sink: Node
    rate: int

    def __post_init__(self) -> None:
        if int(self.rate) != self.rate or self.rate < 1:
            raise DemandError(f"demand rate must be a positive integer, got {self.rate!r}")
        if self.source == self.sink:
            raise DemandError("demand source and sink must differ")

    def validate_against(self, net: FlowNetwork) -> None:
        """Raise :class:`DemandError` unless both terminals are in ``net``."""
        if not net.has_node(self.source):
            raise DemandError(f"demand source {self.source!r} is not in the network")
        if not net.has_node(self.sink):
            raise DemandError(f"demand sink {self.sink!r} is not in the network")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.source!r} -> {self.sink!r}, d={self.rate})"
