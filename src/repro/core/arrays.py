"""Realization arrays (paper §III-C).

For one side of the split (``G_s`` or ``G_t``), the data structure is an
array of length ``2^{|E_side|}``: the entry for failure configuration
``i`` is a ``|D|``-bit value whose ``j``-th bit says whether that
configuration *realizes* assignment ``j`` — i.e. the alive subgraph of
the side can route exactly ``a_l`` sub-streams to/from the ``l``-th
bottleneck port for every ``l`` (Example 2's binary sequences).

Realization of one assignment is a side-local max-flow question: attach
a virtual terminal, give the port arc for bottleneck link ``l`` capacity
``a_l``, and ask for a flow of value ``d``.  Since the port arcs sum to
``d``, the flow reaches ``d`` iff every port arc is saturated — exactly
"assignment realized".

Cost: ``|D| * 2^{|E_side|}`` max-flow solves per side, as the paper
counts.  Realization is monotone in the alive set for a fixed
assignment, so the same monotone pruning as the naive algorithm applies
per bit (enabled by default, reported in the result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.latticewalk import gray_walk_table, popcount_descending_order
from repro.exceptions import SolverError
from repro.flow.base import MaxFlowSolver, get_solver
from repro.flow.incremental import IncrementalMaxFlow, plan_gray_order, resolve_incremental
from repro.flow.residual import ResidualTemplate, build_template
from repro.graph.network import FlowNetwork, Node
from repro.graph.transforms import SubnetworkView
from repro.obs.progress import progress_ticker
from repro.obs.recorder import (
    ARRAY_ENTRIES_BUILT,
    AUGMENTING_PATHS_SAVED,
    FLOW_REPAIRS,
    FLOW_SOLVES,
    count,
    span,
)
from repro.probability.bitset import pack_bitplanes
from repro.probability.enumeration import check_enumerable, configuration_probabilities

__all__ = ["RealizationArray", "build_side_array"]

_VIRTUAL = "__terminal__"


def _validate_side_request(
    net: FlowNetwork,
    *,
    role: str,
    assignments: Sequence[Sequence[int]],
    ports: Sequence[Node],
    demand: int,
) -> None:
    """Shared §III-C input validation (serial builder and the engine)."""
    if role not in ("source", "sink"):
        raise SolverError(f"role must be 'source' or 'sink', got {role!r}")
    check_enumerable(net.num_links)
    if len(assignments) > 63:
        raise SolverError(
            f"realization masks are uint64-packed; got {len(assignments)} assignments"
        )
    for a in assignments:
        if len(a) != len(ports):
            raise SolverError("assignment arity does not match the port count")
        if sum(a) != demand:
            raise SolverError(f"assignment {tuple(a)} does not sum to demand {demand}")


def _side_template(
    net: FlowNetwork,
    *,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    demand: int,
) -> tuple[ResidualTemplate, list[str], int, int]:
    """Residual template with one virtual port arc per cut link.

    Returns ``(template, port_arc_names, source_index, sink_index)`` —
    everything a realization solve needs besides the per-instance alive
    mask and port capacities.
    """
    template = build_template(net, extra_nodes=[_VIRTUAL])
    virtual = template.node_index[_VIRTUAL]
    if terminal not in template.node_index:
        raise SolverError(f"terminal {terminal!r} is not inside this side")
    port_names: list[str] = []
    for l, port in enumerate(ports):
        if port not in template.node_index:
            raise SolverError(f"port {port!r} is not inside this side")
        p = template.node_index[port]
        name = f"port{l}"
        if role == "source":
            template.add_virtual_arc(name, p, virtual, demand)
        else:
            template.add_virtual_arc(name, virtual, p, demand)
        port_names.append(name)

    if role == "source":
        s_idx = template.node_index[terminal]
        t_idx = virtual
    else:
        s_idx = virtual
        t_idx = template.node_index[terminal]
    return template, port_names, s_idx, t_idx


@dataclass(frozen=True)
class RealizationArray:
    """The §III-C array for one side.

    Attributes
    ----------
    masks:
        ``uint64`` array of length ``2^{m}``; entry ``i`` has bit ``j``
        set iff side configuration ``i`` realizes assignment ``j``.
    probabilities:
        Probability of each side configuration (sums to 1).
    num_assignments:
        ``|D|`` — how many bits of each mask are meaningful.
    flow_calls:
        Max-flow solves spent building the array.
    """

    masks: np.ndarray
    probabilities: np.ndarray
    num_assignments: int
    flow_calls: int

    def realizes(self, configuration: int, assignment_index: int) -> bool:
        """Whether one configuration realizes one assignment."""
        return bool((int(self.masks[configuration]) >> assignment_index) & 1)

    def realized_indices(self, configuration: int) -> list[int]:
        """Assignment indices realized by one configuration."""
        mask = int(self.masks[configuration])
        return [j for j in range(self.num_assignments) if (mask >> j) & 1]


def build_side_array(
    side: SubnetworkView,
    *,
    role: str,
    terminal: Node,
    ports: Sequence[Node],
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
    incremental: bool | None = None,
) -> RealizationArray:
    """Build the realization array for one side of the split.

    Parameters
    ----------
    side:
        ``G_s`` or ``G_t`` as produced by
        :func:`repro.graph.transforms.split_on_cut`.
    role:
        ``"source"`` — flow runs ``terminal -> ports`` (the ``G_s``
        case, terminal is ``s``, ports are the ``x_l``); or ``"sink"``
        — flow runs ``ports -> terminal`` (``G_t``, ports are ``y_l``).
    terminal:
        The real terminal inside this side.
    ports:
        Side endpoint of each bottleneck link, aligned with assignment
        components (repeats allowed when cut links share an endpoint).
    assignments:
        The assignment tuples; each must have ``len(ports)`` components
        summing to ``demand``.
    demand:
        The paper's ``d``.
    solver, prune:
        Max-flow solver choice and monotone pruning toggle.
    incremental:
        Walk each assignment's lattice in Gray-code order with flow
        repair — one long-lived engine, retargeted between assignments
        — instead of cold-solving every entry (``None`` = auto: on
        whenever the solver supports the warm-start contract).  The
        masks are bit-identical either way.
    """
    net = side.network
    m = net.num_links
    check_enumerable(m)
    _validate_side_request(
        net, role=role, assignments=assignments, ports=ports, demand=demand
    )
    template, port_names, s_idx, t_idx = _side_template(
        net, role=role, terminal=terminal, ports=ports, demand=demand
    )

    engine = get_solver(solver)
    size = 1 << m
    num_assignments = len(assignments)
    realized = np.zeros((size, num_assignments), dtype=bool)
    flow_calls = 0

    if resolve_incremental(engine, incremental):
        return _build_side_array_gray(
            net,
            template,
            port_names,
            s_idx,
            t_idx,
            realized,
            role=role,
            assignments=assignments,
            demand=demand,
            solver=engine,
            prune=prune,
        )

    if prune and m > 0:
        order = [int(x) for x in popcount_descending_order(m)]
    else:
        order = list(range(size))

    # A literal ticker label per role (RR111 closes the label vocabulary).
    ticker_label = "arrays.source" if role == "source" else "arrays.sink"
    with progress_ticker(ticker_label, total=num_assignments * size) as ticker:
        for j, assignment in enumerate(assignments):
            caps = {name: int(a) for name, a in zip(port_names, assignment)}
            column = realized[:, j]
            for mask in order:
                ticker.tick()
                if prune:
                    doomed = False
                    bits = ~mask & (size - 1)
                    while bits:
                        low = bits & -bits
                        if not column[mask | low]:
                            doomed = True
                            break
                        bits ^= low
                    if doomed:
                        continue
                graph = template.configure(alive=mask, virtual_capacities=caps)
                flow_calls += 1
                value = engine.solve(graph, s_idx, t_idx, limit=demand)
                column[mask] = value >= demand
    count(FLOW_SOLVES, flow_calls)
    count(ARRAY_ENTRIES_BUILT, num_assignments * size)
    return _pack_array(net, realized, num_assignments, flow_calls)


def _pack_array(
    net: FlowNetwork, realized: np.ndarray, num_assignments: int, flow_calls: int
) -> RealizationArray:
    """uint64-pack the realized matrix and attach probabilities."""
    masks = pack_bitplanes(realized)
    probabilities = configuration_probabilities(net)
    return RealizationArray(
        masks=masks,
        probabilities=probabilities,
        num_assignments=num_assignments,
        flow_calls=flow_calls,
    )


def _build_side_array_gray(
    net: FlowNetwork,
    template: ResidualTemplate,
    port_names: list[str],
    s_idx: int,
    t_idx: int,
    realized: np.ndarray,
    *,
    role: str,
    assignments: Sequence[Sequence[int]],
    demand: int,
    solver: MaxFlowSolver,
    prune: bool,
) -> RealizationArray:
    """Incremental §III-C build: one repairable flow across all entries.

    Assignment-outer like the cold path, but each assignment switch is a
    :meth:`~repro.flow.incremental.IncrementalMaxFlow.retarget` (only
    the virtual port arcs move) and each column is filled by the shared
    Gray walk, so consecutive solves repair a one-link delta instead of
    starting cold.  The realized matrix is bit-identical to the cold
    build; ``flow_calls`` counts the engine's solver invocations.
    """
    m = net.num_links
    check_enumerable(m)
    size = 1 << m
    num_assignments = len(assignments)
    engine = IncrementalMaxFlow(
        template,
        s_idx,
        t_idx,
        solver=solver,
        limit=demand,
        alive=0,
        virtual_capacities={name: 0 for name in port_names},
    )
    # A literal ticker label per role (RR111 closes the label vocabulary).
    ticker_label = "arrays.source" if role == "source" else "arrays.sink"
    with progress_ticker(ticker_label, total=num_assignments * size) as ticker:
        with span("incremental.walk", kernel="arrays", role=role, links=m):
            for j, assignment in enumerate(assignments):
                caps = {name: int(a) for name, a in zip(port_names, assignment)}
                engine.retarget(caps)
                order = plan_gray_order(
                    template, s_idx, t_idx, m,
                    solver=solver, limit=demand or None, virtual_capacities=caps,
                )
                column = realized[:, j]
                gray_walk_table(
                    column,
                    m,
                    lambda mask: engine.goto(mask) >= demand,
                    order=order,
                    prune=prune,
                    tick=ticker.tick,
                )
    count(FLOW_SOLVES, engine.solver_calls)
    if engine.repairs:
        count(FLOW_REPAIRS, engine.repairs)
    if engine.paths_saved:
        count(AUGMENTING_PATHS_SAVED, engine.paths_saved)
    count(ARRAY_ENTRIES_BUILT, num_assignments * size)
    return _pack_array(net, realized, num_assignments, engine.solver_calls)
