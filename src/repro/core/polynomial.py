"""The reliability polynomial.

When every link shares one failure probability ``p``, the reliability
is a polynomial in ``p`` determined purely by the network's *structure*:

    R(p) = Σ_j  N_j · (1 − p)^j · p^(m − j)

where ``N_j`` counts the feasible configurations with exactly ``j``
alive links.  One feasibility enumeration yields the whole curve — every
"reliability vs p" figure, every derivative, every crossover between
two topologies — with no further max-flow work.

The coefficient vector ``N`` is also a structural signature: ``N_m = 1``
iff the all-alive network admits the demand, the smallest ``j`` with
``N_j > 0`` is the size of the smallest feasible link set (the minimal
route budget), and ``N_j ≤ C(m, j)`` with equality from the point the
demand is unavoidable.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.core.demand import FlowDemand
from repro.core.naive import feasibility_table
from repro.exceptions import EstimationError
from repro.flow.base import MaxFlowSolver
from repro.graph.network import FlowNetwork
from repro.probability.bitset import popcount_array

__all__ = ["ReliabilityPolynomial", "reliability_polynomial"]


@dataclass(frozen=True)
class ReliabilityPolynomial:
    """``R(p)`` for a network with identical link failure probability.

    ``counts[j]`` is ``N_j`` — the number of demand-feasible
    configurations with exactly ``j`` alive links.
    """

    counts: tuple[int, ...]
    num_links: int
    flow_calls: int

    def __call__(self, p: float) -> float:
        """Evaluate the reliability at failure probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise EstimationError(f"failure probability {p} outside [0, 1]")
        m = self.num_links
        total = 0.0
        for j, count in enumerate(self.counts):
            if count:
                total += count * (1.0 - p) ** j * p ** (m - j)
        return float(min(1.0, max(0.0, total)))

    def derivative(self, p: float) -> float:
        """``dR/dp`` at ``p`` (non-positive everywhere: more failure,
        less reliability)."""
        if not 0.0 < p < 1.0:
            raise EstimationError("derivative defined on the open interval (0, 1)")
        m = self.num_links
        total = 0.0
        for j, count in enumerate(self.counts):
            if not count:
                continue
            q = 1.0 - p
            term = 0.0
            if m - j > 0:
                term += (m - j) * q**j * p ** (m - j - 1)
            if j > 0:
                term -= j * q ** (j - 1) * p ** (m - j)
            total += count * term
        return float(total)

    @property
    def min_feasible_links(self) -> int | None:
        """Size of the smallest alive-set that still delivers, or None
        when even the full network cannot."""
        for j, count in enumerate(self.counts):
            if count:
                return j
        return None

    @property
    def feasible_configurations(self) -> int:
        """Total count of feasible configurations (= Σ N_j)."""
        return sum(self.counts)

    def coefficient_bounds_hold(self) -> bool:
        """Structural sanity: ``N_j <= C(m, j)`` for every ``j``."""
        return all(
            count <= comb(self.num_links, j) for j, count in enumerate(self.counts)
        )

    def curve(self, probabilities: list[float]) -> list[float]:
        """Evaluate at many points (the plot-series helper)."""
        return [self(p) for p in probabilities]


def reliability_polynomial(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    solver: str | MaxFlowSolver | None = None,
) -> ReliabilityPolynomial:
    """Compute the coefficient counts by one feasibility enumeration.

    The per-link failure probabilities stored on ``net`` are ignored —
    the polynomial is a function of the shared ``p`` supplied at
    evaluation time.  Subject to the naive method's size budget.
    """
    table, oracle = feasibility_table(net, demand, solver=solver)
    m = net.num_links
    counts = np.zeros(m + 1, dtype=np.int64)
    popcounts = popcount_array(m)
    np.add.at(counts, popcounts[table.nonzero()[0]], 1)
    return ReliabilityPolynomial(
        counts=tuple(int(c) for c in counts),
        num_links=m,
        flow_calls=oracle.calls,
    )
