"""Compensated floating-point accumulation.

The exact algorithms fold up to ``2^|E|`` probability terms — many of
them tiny, some with alternating signs (inclusion–exclusion) — into a
single float.  Naive left-to-right accumulation loses low-order bits in
exactly the regime the paper's exactness claim lives in (reliabilities
within ``1e-12`` of 0 or 1).  Two tools fix that:

* :func:`fsum` — re-export of :func:`math.fsum` (Shewchuk's exact
  adaptive summation): the right call when the terms are already
  materialized.
* :class:`KahanSum` — a Kahan–Babuška–Neumaier running accumulator for
  streaming loops where materializing the term list is undesirable
  (per-sample Monte-Carlo weights, worker partial sums).

Lint rule RR102 steers ``core/`` and ``probability/`` code here
whenever it accumulates probability-typed values.
"""

from __future__ import annotations

from math import fsum
from typing import Iterable, Iterator

__all__ = ["KahanSum", "fsum", "prob_fsum"]


class KahanSum:
    """Kahan–Babuška–Neumaier compensated running sum.

    Tracks a correction term alongside the running total so that each
    :meth:`add` loses (almost) no low-order bits regardless of the
    magnitude ordering of the terms.  The final :attr:`value` applies
    the correction.

    >>> acc = KahanSum()
    >>> acc.extend([1e16, 1.0, -1e16]).value
    1.0
    """

    __slots__ = ("_total", "_compensation", "_count")

    def __init__(self, initial: float = 0.0) -> None:
        self._total = float(initial)
        self._compensation = 0.0
        self._count = 1 if initial else 0

    def add(self, term: float) -> "KahanSum":
        """Fold one term in; returns ``self`` for chaining."""
        term = float(term)
        candidate = self._total + term
        if abs(self._total) >= abs(term):
            self._compensation += (self._total - candidate) + term
        else:
            self._compensation += (term - candidate) + self._total
        self._total = candidate
        self._count += 1
        return self

    def extend(self, terms: Iterable[float]) -> "KahanSum":
        """Fold every term of an iterable in."""
        for term in terms:
            self.add(term)
        return self

    @property
    def value(self) -> float:
        """The compensated total."""
        return self._total + self._compensation

    @property
    def count(self) -> int:
        """How many terms have been folded in."""
        return self._count

    def __float__(self) -> float:
        return self.value

    def __iadd__(self, term: float) -> "KahanSum":
        return self.add(term)

    def __repr__(self) -> str:
        return f"KahanSum(value={self.value!r}, count={self._count})"


def prob_fsum(terms: Iterable[float]) -> float:
    """Exactly-rounded sum of probability terms.

    Thin, intention-revealing wrapper over :func:`math.fsum`; the
    iterator is materialized by ``fsum`` itself.
    """
    return fsum(_as_floats(terms))


def _as_floats(terms: Iterable[float]) -> Iterator[float]:
    for term in terms:
        yield float(term)
