"""The naive exact algorithm (paper §I, Fig. 1).

Enumerate all ``2^|E|`` failure configurations; for each, decide with a
max-flow computation whether the alive subgraph admits the demand; sum
the probabilities of the feasible ones.  ``O(2^|E| |V||E|)`` — the
baseline the bottleneck algorithm is measured against.

Two refinements, both ablated in benchmark A3:

* configuration probabilities come from the vectorized doubling table
  (:func:`repro.probability.configuration_probabilities`) instead of a
  per-configuration product;
* *monotone pruning*: s-t flow feasibility is monotone in the alive
  set, so a configuration is infeasible whenever some one-link superset
  already proved infeasible.  Scanning masks in decreasing popcount
  order makes every such superset available when needed and skips the
  max-flow call entirely.

A third refinement is the default when the solver supports it
(``incremental=None``): walk the lattice in Gray-code order and let a
long-lived :class:`repro.flow.incremental.IncrementalMaxFlow` *repair*
the previous configuration's flow across each one-link step instead of
cold-solving.  The table is bit-identical either way — only the solve
accounting changes (pruning then consults only already-visited
supersets, which keeps it sound in Gray order).
"""

from __future__ import annotations

import numpy as np

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.latticewalk import gray_walk_table
from repro.core.result import ReliabilityResult
from repro.flow.base import MaxFlowSolver
from repro.flow.incremental import plan_gray_order, resolve_incremental
from repro.graph.network import FlowNetwork
from repro.obs.progress import progress_ticker
from repro.obs.recorder import AUGMENTING_PATHS_SAVED, FLOW_REPAIRS, count, span
from repro.probability.bitset import popcount_array
from repro.probability.enumeration import check_enumerable, configuration_probabilities

__all__ = ["naive_reliability", "feasibility_table"]

#: Hard cap for the naive method specifically (each configuration costs
#: a max-flow solve, so the practical budget is tighter than the
#: probability-table budget).
MAX_NAIVE_BITS = 24


def feasibility_table(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
    incremental: bool | None = None,
) -> tuple[np.ndarray, FeasibilityOracle]:
    """Boolean feasibility of every configuration, plus the oracle used.

    ``table[mask]`` is true iff the subgraph of links in ``mask``
    admits the demand.  With ``prune=True`` monotone pruning is applied;
    the oracle's ``calls`` attribute then reports how many max-flow
    solves were actually needed.  ``incremental`` selects the Gray-walk
    flow-repair path (``None`` = whenever the solver supports it); the
    table is identical either way.
    """
    demand.validate_against(net)
    m = net.num_links
    check_enumerable(m, limit=MAX_NAIVE_BITS)
    use_incremental = resolve_incremental(solver, incremental)
    oracle = FeasibilityOracle(
        net,
        demand.source,
        demand.sink,
        demand.rate,
        solver=solver,
        incremental=use_incremental,
    )
    size = 1 << m
    table = np.zeros(size, dtype=bool)

    if use_incremental:
        return _feasibility_table_gray(table, oracle, m, prune=prune), oracle

    with span("naive.enumerate", links=m, prune=bool(prune)):
        with progress_ticker("naive.configurations", total=size) as ticker:
            if not prune:
                for mask in range(size):  # repro: noqa[RR109] cold reference path, kept byte-identical for ablations
                    ticker.tick()
                    table[mask] = oracle.feasible(mask)
                return table, oracle

            counts = popcount_array(m)
            # Stable argsort on -popcount visits high-popcount masks first, so
            # every one-bit superset of the current mask is already decided.
            order = np.argsort(-counts.astype(np.int16), kind="stable")
            for mask_np in order:
                mask = int(mask_np)
                ticker.tick()
                doomed = False
                bits = ~mask & (size - 1)  # links missing from this configuration
                while bits:
                    low = bits & -bits
                    if not table[mask | low]:
                        # Some one-link superset is infeasible, hence so is this
                        # subset (feasibility is monotone); skip the solve.
                        doomed = True
                        break
                    bits ^= low
                if not doomed:
                    table[mask] = oracle.feasible(mask)
    return table, oracle


def _feasibility_table_gray(
    table: np.ndarray, oracle: FeasibilityOracle, m: int, *, prune: bool
) -> np.ndarray:
    """Fill the feasibility table by a Gray-code walk with flow repair.

    Every lattice step flips one link, so the oracle's incremental
    engine repairs the carried flow instead of cold-solving.  Pruning
    consults only *visited* neighbours — in Gray order the lattice is
    not decided in monotone layers, but monotonicity cuts both ways: a
    visited infeasible one-bit superset dooms the mask, and a visited
    feasible one-bit subset blesses it (the popcount-order scan only
    ever exploits the first half).  Either way the table stays exact;
    only the solve accounting differs from the cold orders.
    """
    check_enumerable(m, limit=MAX_NAIVE_BITS)
    size = 1 << m
    engine = oracle.engine
    order = plan_gray_order(
        oracle.template, oracle._s, oracle._t, m,
        solver=oracle.solver, limit=oracle.demand or None,
    )
    with span("naive.enumerate", links=m, prune=bool(prune)):
        with span("incremental.walk", kernel="naive", links=m):
            with progress_ticker("naive.configurations", total=size) as ticker:
                gray_walk_table(
                    table, m, oracle.feasible, order=order, prune=prune, tick=ticker.tick
                )
            if engine is not None:
                if engine.repairs:
                    count(FLOW_REPAIRS, engine.repairs)
                if engine.paths_saved:
                    count(AUGMENTING_PATHS_SAVED, engine.paths_saved)
    return table


def naive_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
    incremental: bool | None = None,
) -> ReliabilityResult:
    """Exact reliability by full configuration enumeration.

    Parameters
    ----------
    net, demand:
        The problem instance.
    solver:
        Max-flow solver (registry name or instance).
    prune:
        Enable monotone pruning (identical result, fewer solves).
    incremental:
        Walk the lattice in Gray-code order with flow repair instead of
        cold-solving each configuration (``None`` = auto: on whenever
        the solver supports the warm-start contract).  Identical value;
        ``flow_calls`` then counts the repair engine's solver
        invocations.
    """
    table, oracle = feasibility_table(
        net, demand, solver=solver, prune=prune, incremental=incremental
    )
    with span("naive.accumulate"):
        probabilities = configuration_probabilities(net)
        value = float(probabilities[table].sum())
    return ReliabilityResult(
        value=value,
        method="naive" if prune else "naive-unpruned",
        flow_calls=oracle.calls,
        configurations=len(table),
        details={
            "pruned": bool(prune),
            "incremental": bool(oracle.incremental),
            "feasible_configurations": int(table.sum()),
        },
    )
