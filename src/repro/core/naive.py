"""The naive exact algorithm (paper §I, Fig. 1).

Enumerate all ``2^|E|`` failure configurations; for each, decide with a
max-flow computation whether the alive subgraph admits the demand; sum
the probabilities of the feasible ones.  ``O(2^|E| |V||E|)`` — the
baseline the bottleneck algorithm is measured against.

Two refinements, both ablated in benchmark A3:

* configuration probabilities come from the vectorized doubling table
  (:func:`repro.probability.configuration_probabilities`) instead of a
  per-configuration product;
* *monotone pruning*: s-t flow feasibility is monotone in the alive
  set, so a configuration is infeasible whenever some one-link superset
  already proved infeasible.  Scanning masks in decreasing popcount
  order makes every such superset available when needed and skips the
  max-flow call entirely.
"""

from __future__ import annotations

import numpy as np

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.result import ReliabilityResult
from repro.flow.base import MaxFlowSolver
from repro.graph.network import FlowNetwork
from repro.obs.progress import progress_ticker
from repro.obs.recorder import span
from repro.probability.bitset import popcount_array
from repro.probability.enumeration import check_enumerable, configuration_probabilities

__all__ = ["naive_reliability", "feasibility_table"]

#: Hard cap for the naive method specifically (each configuration costs
#: a max-flow solve, so the practical budget is tighter than the
#: probability-table budget).
MAX_NAIVE_BITS = 24


def feasibility_table(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
) -> tuple[np.ndarray, FeasibilityOracle]:
    """Boolean feasibility of every configuration, plus the oracle used.

    ``table[mask]`` is true iff the subgraph of links in ``mask``
    admits the demand.  With ``prune=True`` monotone pruning is applied;
    the oracle's ``calls`` attribute then reports how many max-flow
    solves were actually needed.
    """
    demand.validate_against(net)
    m = net.num_links
    check_enumerable(m, limit=MAX_NAIVE_BITS)
    oracle = FeasibilityOracle(net, demand.source, demand.sink, demand.rate, solver=solver)
    size = 1 << m
    table = np.zeros(size, dtype=bool)

    with span("naive.enumerate", links=m, prune=bool(prune)):
        ticker = progress_ticker("naive.configurations", total=size)
        if not prune:
            for mask in range(size):
                ticker.tick()
                table[mask] = oracle.feasible(mask)
            ticker.finish()
            return table, oracle

        counts = popcount_array(m)
        # Stable argsort on -popcount visits high-popcount masks first, so
        # every one-bit superset of the current mask is already decided.
        order = np.argsort(-counts.astype(np.int16), kind="stable")
        for mask_np in order:
            mask = int(mask_np)
            ticker.tick()
            doomed = False
            bits = ~mask & (size - 1)  # links missing from this configuration
            while bits:
                low = bits & -bits
                if not table[mask | low]:
                    # Some one-link superset is infeasible, hence so is this
                    # subset (feasibility is monotone); skip the solve.
                    doomed = True
                    break
                bits ^= low
            if not doomed:
                table[mask] = oracle.feasible(mask)
        ticker.finish()
    return table, oracle


def naive_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
) -> ReliabilityResult:
    """Exact reliability by full configuration enumeration.

    Parameters
    ----------
    net, demand:
        The problem instance.
    solver:
        Max-flow solver (registry name or instance).
    prune:
        Enable monotone pruning (identical result, fewer solves).
    """
    table, oracle = feasibility_table(net, demand, solver=solver, prune=prune)
    with span("naive.accumulate"):
        probabilities = configuration_probabilities(net)
        value = float(probabilities[table].sum())
    return ReliabilityResult(
        value=value,
        method="naive" if prune else "naive-unpruned",
        flow_calls=oracle.calls,
        configurations=len(table),
        details={
            "pruned": bool(prune),
            "feasible_configurations": int(table.sum()),
        },
    )
