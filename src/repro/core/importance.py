"""Link importance measures.

Reliability tells the operator *how good* the system is; importance
measures tell them *which link to fix first*.  All are derived from the
two conditional reliabilities of each link ``e``:

* ``R(1_e)`` — reliability given ``e`` up (its failure probability set
  to 0);
* ``R(0_e)`` — reliability given ``e`` down (``e`` removed).

Implemented measures (standard definitions):

* **Birnbaum** ``I_B(e) = R(1_e) − R(0_e)`` — the partial derivative of
  system reliability with respect to the link's availability; the
  probability that ``e`` is pivotal.
* **Improvement potential** ``I_IP(e) = R(1_e) − R`` — the gain from
  making ``e`` perfect; what a link upgrade actually buys.
* **Risk achievement worth** ``RAW(e) = (1 − R(0_e)) / (1 − R)`` — how
  much worse unreliability gets if ``e`` is lost for good.
* **Fussell–Vesely** ``I_FV(e) = (R(1_e) − R) · p_e / (1 − R)`` — the
  approximate fraction of system failures involving ``e``'s failure.

Each link costs two exact computations on a (possibly smaller)
network, so the total is ``2m`` reliability evaluations with the chosen
method — still exponential inside, but embarrassingly parallel across
links and far cheaper than naively differentiating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.exceptions import ReproError
from repro.graph.network import FlowNetwork
from repro.graph.transforms import alive_subnetwork

__all__ = ["LinkImportance", "link_importances", "most_important_link"]


@dataclass(frozen=True)
class LinkImportance:
    """All importance measures for one link."""

    link_index: int
    reliability_if_up: float
    reliability_if_down: float
    birnbaum: float
    improvement_potential: float
    risk_achievement_worth: float
    fussell_vesely: float


def link_importances(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    method: str = "auto",
    **options: object,
) -> list[LinkImportance]:
    """Importance measures for every link, in index order.

    ``method``/``options`` select the underlying exact algorithm (an
    estimator would make the differences noise-dominated, so
    ``montecarlo`` methods are rejected).
    """
    if method.startswith("montecarlo"):
        raise ReproError("importance measures need an exact method")
    demand.validate_against(net)
    base = float(compute_reliability(net, demand=demand, method=method, **options).value)
    unreliability = 1.0 - base

    results: list[LinkImportance] = []
    all_indices = list(range(net.num_links))
    for index in all_indices:
        link = net.link(index)
        up_net = net.with_failure_probabilities({index: 0.0})
        r_up = float(
            compute_reliability(up_net, demand=demand, method=method, **options).value
        )
        down_view = alive_subnetwork(net, [i for i in all_indices if i != index])
        r_down = float(
            compute_reliability(
                down_view.network, demand=demand, method=method, **options
            ).value
        )
        birnbaum = r_up - r_down
        improvement = r_up - base
        if unreliability > 1e-15:
            raw = (1.0 - r_down) / unreliability
            fv = (r_up - base) * link.failure_probability / unreliability
        else:
            raw = 1.0
            fv = 0.0
        results.append(
            LinkImportance(
                link_index=index,
                reliability_if_up=r_up,
                reliability_if_down=r_down,
                birnbaum=birnbaum,
                improvement_potential=improvement,
                risk_achievement_worth=raw,
                fussell_vesely=fv,
            )
        )
    return results


def most_important_link(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    measure: str = "birnbaum",
    method: str = "auto",
    **options: object,
) -> LinkImportance:
    """The link maximizing the chosen measure.

    ``measure``: ``"birnbaum"``, ``"improvement_potential"``,
    ``"risk_achievement_worth"`` or ``"fussell_vesely"``.
    """
    table = link_importances(net, demand, method=method, **options)
    if not table:
        raise ReproError("the network has no links")
    try:
        return max(table, key=lambda imp: getattr(imp, measure))
    except AttributeError as exc:
        raise ReproError(f"unknown importance measure {measure!r}") from exc
