"""Bridge decomposition — the paper's Eq. (1) special case (``k = 1``).

If a single link ``e' = (x, y)`` separates ``s`` from ``t``, then

    r(G) = r(G_s) · (1 − p(e')) · r(G_t)

where ``r(G_s)`` is the reliability of the source side for demand
``(s, x, d)`` and ``r(G_t)`` that of the sink side for ``(y, t, d)`` —
three independent events, so the product is exact (no accumulation
machinery needed).  If ``c(e') < d`` the reliability is trivially zero.

The side reliabilities are computed by the naive algorithm, giving the
``O(2^{α|E|} |V||E|)`` total of §III-A.
"""

from __future__ import annotations

from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.core.result import ReliabilityResult
from repro.exceptions import DecompositionError
from repro.flow.base import MaxFlowSolver
from repro.graph.cuts import bridges_between
from repro.graph.network import FlowNetwork
from repro.graph.transforms import SideSplit, split_on_cut

__all__ = ["bridge_reliability"]


def _side_reliability(
    side_net: FlowNetwork,
    source,
    sink,
    rate: int,
    solver,
) -> ReliabilityResult:
    if source == sink:
        # The terminal sits directly on the bridge endpoint; the side
        # imposes no constraint.
        return ReliabilityResult(value=1.0, method="naive", configurations=1)
    return naive_reliability(side_net, FlowDemand(source, sink, rate), solver=solver)


def bridge_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    *,
    bridge: int | None = None,
    solver: str | MaxFlowSolver | None = None,
) -> ReliabilityResult:
    """Exact reliability via Eq. (1).

    ``bridge`` names the separating link; when omitted the first
    s-t-separating bridge (Tarjan) is used.  Raises
    :class:`DecompositionError` when the network has none.
    """
    demand.validate_against(net)
    if bridge is None:
        candidates = bridges_between(net, demand.source, demand.sink)
        if not candidates:
            raise DecompositionError("network has no s-t separating bridge")
        bridge = candidates[0]
    link = net.link(bridge)
    split: SideSplit = split_on_cut(net, demand.source, demand.sink, [bridge])

    if link.capacity < demand.rate:
        return ReliabilityResult(
            value=0.0,
            method="bridge",
            details={"bridge": bridge, "reason": "bridge capacity below demand"},
        )

    x = split.source_ports[0]
    y = split.sink_ports[0]
    r_s = _side_reliability(split.source_side.network, demand.source, x, demand.rate, solver)
    r_t = _side_reliability(split.sink_side.network, y, demand.sink, demand.rate, solver)
    value = r_s.value * link.availability * r_t.value
    return ReliabilityResult(
        value=value,
        method="bridge",
        flow_calls=r_s.flow_calls + r_t.flow_calls,
        configurations=r_s.configurations + r_t.configurations,
        details={
            "bridge": bridge,
            "alpha": split.alpha,
            "source_side_reliability": r_s.value,
            "sink_side_reliability": r_t.value,
            "bridge_availability": link.availability,
        },
    )
