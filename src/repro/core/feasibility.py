"""The per-configuration feasibility oracle.

Every exact algorithm reduces to the same primitive: *does the subgraph
of alive links admit an s-t flow of value d?*  The oracle pre-builds one
:class:`~repro.flow.residual.ResidualTemplate` and answers each query
with a capacity reset plus a limited max-flow solve — no per-query graph
construction, which is what makes millions of queries affordable.  It
also counts its calls, which is the cost metric reported in results and
benchmarks.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import SolverError
from repro.flow.base import MaxFlowSolver, get_solver
from repro.flow.incremental import IncrementalMaxFlow
from repro.flow.residual import build_template
from repro.graph.network import FlowNetwork, Node
from repro.obs.recorder import FLOW_SOLVES, count
from repro.probability.bitset import mask_from_indices

__all__ = ["FeasibilityOracle"]


class FeasibilityOracle:
    """Answers "alive-set admits demand?" queries against one network.

    Parameters
    ----------
    net, source, sink, demand:
        The fixed problem; only the alive set varies per query.
    solver:
        Registry name or instance; default Dinic.
    incremental:
        Route :meth:`feasible` queries through a long-lived
        :class:`~repro.flow.incremental.IncrementalMaxFlow` that repairs
        the previous flow instead of cold-solving; exact for any query
        sequence, cheapest when consecutive alive sets are Gray-adjacent.
        Requires a solver supporting the warm-start contract.

    Attributes
    ----------
    calls:
        Number of max-flow solves performed so far (in incremental mode,
        solver invocations by the repair engine — augments and repairs).
    """

    def __init__(
        self,
        net: FlowNetwork,
        source: Node,
        sink: Node,
        demand: int,
        *,
        solver: str | MaxFlowSolver | None = None,
        incremental: bool = False,
    ) -> None:
        if demand < 0:
            raise SolverError("demand must be non-negative")
        self.net = net
        self.source = source
        self.sink = sink
        self.demand = int(demand)
        self.solver = get_solver(solver)
        self.template = build_template(net)
        try:
            self._s = self.template.node_index[source]
            self._t = self.template.node_index[sink]
        except KeyError as exc:
            raise SolverError(f"terminal {exc.args[0]!r} is not in the network") from exc
        self.calls = 0
        self.incremental = bool(incremental)
        self._engine: IncrementalMaxFlow | None = None
        if self.incremental and self.demand > 0:
            self._engine = IncrementalMaxFlow(
                self.template,
                self._s,
                self._t,
                solver=self.solver,
                limit=self.demand,
                alive=0,
            )

    @property
    def engine(self) -> IncrementalMaxFlow | None:
        """The repair engine behind incremental queries (``None`` when cold)."""
        return self._engine

    def _alive_mask(self, alive: int | Iterable[int] | None) -> int:
        if alive is None:
            return (1 << self.net.num_links) - 1
        if isinstance(alive, int):
            return alive
        return mask_from_indices(alive)

    def flow_value(self, alive: int | Iterable[int] | None, *, limit: int | None = None) -> int:
        """The (possibly limited) max-flow value for an alive set."""
        graph = self.template.configure(alive=alive)
        self.calls += 1
        count(FLOW_SOLVES)
        return self.solver.solve(graph, self._s, self._t, limit=limit)

    def feasible(self, alive: int | Iterable[int] | None) -> bool:
        """Whether the alive subgraph admits the demand.

        In incremental mode the long-lived engine repairs its previous
        flow toward the queried alive set instead of cold-solving; the
        answer is identical, only the amount of solver work differs.
        """
        if self.demand == 0:
            return True
        if self._engine is not None:
            engine = self._engine
            before = engine.solver_calls
            value = engine.goto(self._alive_mask(alive))
            delta = engine.solver_calls - before
            if delta:
                self.calls += delta
                count(FLOW_SOLVES, delta)
            return value >= self.demand
        return self.flow_value(alive, limit=self.demand) >= self.demand

    def used_links(
        self, alive: int | Iterable[int] | None, *, limit: int | None = None
    ) -> list[int]:
        """Links carrying flow in one max-flow solution.

        With ``limit`` set (typically the demand) the returned set is
        the support of a flow of exactly that value — a demand-feasible
        route family rather than a maximal one.  Used by the factoring
        branching heuristic and the route lower bound.  Runs a fresh
        solve; the returned indices are sorted.
        """
        graph = self.template.configure(alive=alive)
        self.calls += 1
        count(FLOW_SOLVES)
        self.solver.solve(graph, self._s, self._t, limit=limit)
        used = []
        for link in self.net.links():
            if self.template.link_flow(link.index) != 0:
                used.append(link.index)
        return used
