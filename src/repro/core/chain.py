"""Chain decomposition — series composition of bottleneck cuts.

Extension beyond the paper: when the network decomposes along an
*ordered sequence* of bottleneck cuts ``C_1, ..., C_r`` into segments
``S_0 (∋ s), S_1, ..., S_r (∋ t)``, the reliability is computed by a
dynamic program over the distribution of the *set of reachable
assignments* at each interface.  The exponent drops from
``max(|E_s|, |E_t|)`` (single best cut) to the largest **segment**,
which can be arbitrarily smaller.  The paper's algorithm is the
``r = 1`` case — a property test pins ``chain == bottleneck == naive``.

The DP state after interface ``j`` is a probability vector over subsets
``R ⊆ A_j`` ("with what probability is exactly this set of cut-``j``
assignments still completable from ``s``?"):

* segment 0 initialises the vector from its §III-C realization array;
* crossing cut ``j`` mixes over the ``2^{|C_j|}`` survival patterns,
  intersecting ``R`` with the supported class of each pattern (Eq. 2/3
  generalised);
* a middle segment maps ``R`` through its per-configuration relation
  ``M_c ⊆ A_j × A_{j+1}``: the new set is
  ``{b : ∃ a ∈ R, (a, b) ∈ M_c}``;
* the sink segment closes the chain:
  ``R(G) = Σ_R dist[R] · P(realized sink set intersects R)``, evaluated
  with a subset-zeta table (no pairwise loop).

Model requirements are those of the single-cut algorithm, per cut:
every cut link joins consecutive segments (directed ones forward), and
all sub-streams travel source-to-sink.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.arrays import build_side_array
from repro.core.assignments import enumerate_assignments, support_mask
from repro.core.bottleneck import pattern_probability
from repro.core.demand import FlowDemand
from repro.core.result import ReliabilityResult
from repro.core.summation import prob_fsum
from repro.exceptions import DecompositionError, SolverError
from repro.flow.base import MaxFlowSolver, get_solver
from repro.flow.residual import build_template
from repro.graph.connectivity import connected_components
from repro.graph.network import FlowNetwork, Node
from repro.graph.transforms import SubnetworkView, induced_subnetwork
from repro.obs.recorder import FLOW_SOLVES, count
from repro.probability.bitset import popcount_array
from repro.probability.enumeration import check_enumerable, configuration_probabilities
from repro.probability.zeta import subset_zeta

__all__ = ["chain_reliability", "ChainStructure", "analyze_chain"]

_SRC = "__chain_src__"
_SNK = "__chain_snk__"

#: Assignment sets per interface are packed into subset-indexed vectors.
MAX_CHAIN_ASSIGNMENTS = 16


class ChainStructure:
    """Validated decomposition: segments, cuts and port alignments.

    Attributes
    ----------
    segments:
        ``SubnetworkView`` per segment, source side first.
    cuts:
        The cut link indices, as given.
    out_ports, in_ports:
        ``out_ports[j][i]`` / ``in_ports[j][i]`` are the endpoints of
        cut ``j``'s ``i``-th link in segment ``j`` / ``j + 1``.
    """

    def __init__(
        self,
        segments: list[SubnetworkView],
        cuts: list[tuple[int, ...]],
        out_ports: list[tuple[Node, ...]],
        in_ports: list[tuple[Node, ...]],
    ) -> None:
        self.segments = segments
        self.cuts = cuts
        self.out_ports = out_ports
        self.in_ports = in_ports

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def largest_segment_links(self) -> int:
        return max(len(seg.link_map) for seg in self.segments)


def analyze_chain(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    cuts: Sequence[Sequence[int]],
) -> ChainStructure:
    """Validate an ordered cut sequence and derive the segments.

    Raises :class:`DecompositionError` when the cuts overlap, do not
    yield one extra component per cut, are out of order, point
    backwards, or leave a segment straddling an interface.
    """
    if not cuts:
        raise DecompositionError("need at least one cut")
    flat: list[int] = [i for cut in cuts for i in cut]
    if len(set(flat)) != len(flat):
        raise DecompositionError("cuts share link indices")
    cut_set = set(flat)
    alive = [link.index for link in net.links() if link.index not in cut_set]
    components = connected_components(net, alive)

    def find_component(node: Node) -> set[Node]:
        for comp in components:
            if node in comp:
                return comp
        raise DecompositionError(f"node {node!r} missing from the network")

    segments_nodes: list[set[Node]] = [find_component(source)]
    out_ports: list[tuple[Node, ...]] = []
    in_ports: list[tuple[Node, ...]] = []
    for j, cut in enumerate(cuts):
        previous = segments_nodes[j]
        next_comp: set[Node] | None = None
        outs: list[Node] = []
        ins: list[Node] = []
        for index in cut:
            link = net.link(index)
            tail_in = link.tail in previous
            head_in = link.head in previous
            if tail_in == head_in:
                raise DecompositionError(
                    f"cut {j} link {index} does not leave segment {j}"
                )
            if head_in:  # link enters the previous segment
                if link.directed:
                    raise DecompositionError(
                        f"cut {j} link {index} points backwards (sink to source side)"
                    )
                out_node, in_node = link.head, link.tail
            else:
                out_node, in_node = link.tail, link.head
            comp = find_component(in_node)
            if comp is previous:
                raise DecompositionError(
                    f"cut {j} link {index} does not separate segments"
                )
            if next_comp is None:
                next_comp = comp
            elif comp is not next_comp:
                raise DecompositionError(
                    f"cut {j} links land in different components"
                )
            outs.append(out_node)
            ins.append(in_node)
        assert next_comp is not None
        segments_nodes.append(next_comp)
        out_ports.append(tuple(outs))
        in_ports.append(tuple(ins))

    if sink not in segments_nodes[-1]:
        raise DecompositionError(
            "the sink is not in the last segment; cuts are mis-ordered or not separating"
        )
    seen_ids = {id(c) for c in segments_nodes}
    if len(seen_ids) != len(segments_nodes):
        raise DecompositionError("a segment repeats; cuts are not a series chain")
    # Components not part of the chain may only be isolated leftovers.
    for comp in components:
        if id(comp) not in seen_ids and len(comp) > 1:
            raise DecompositionError(
                "the cut sequence leaves an extra non-trivial component"
            )

    segments = [induced_subnetwork(net, nodes) for nodes in segments_nodes]
    return ChainStructure(
        segments=segments,
        cuts=[tuple(cut) for cut in cuts],
        out_ports=out_ports,
        in_ports=in_ports,
    )


def _build_middle_relation(
    segment: SubnetworkView,
    in_ports: Sequence[Node],
    out_ports: Sequence[Node],
    in_assignments: Sequence[Sequence[int]],
    out_assignments: Sequence[Sequence[int]],
    demand: int,
    solver: str | MaxFlowSolver | None,
    prune: bool,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-configuration relation matrices for a middle segment.

    Returns ``(relation, probabilities, flow_calls)`` with ``relation``
    of shape ``(2^m, |A_in|, |A_out|)``: entry true iff the alive
    subgraph can absorb exactly ``a`` at the in-ports and emit exactly
    ``b`` at the out-ports.
    """
    net = segment.network
    m = net.num_links
    check_enumerable(m)
    template = build_template(net, extra_nodes=[_SRC, _SNK])
    src = template.node_index[_SRC]
    snk = template.node_index[_SNK]
    in_names: list[str] = []
    out_names: list[str] = []
    for i, port in enumerate(in_ports):
        if port not in template.node_index:
            raise SolverError(f"in-port {port!r} missing from segment")
        name = f"in{i}"
        template.add_virtual_arc(name, src, template.node_index[port], demand)
        in_names.append(name)
    for i, port in enumerate(out_ports):
        if port not in template.node_index:
            raise SolverError(f"out-port {port!r} missing from segment")
        name = f"out{i}"
        template.add_virtual_arc(name, template.node_index[port], snk, demand)
        out_names.append(name)

    engine = get_solver(solver)
    size = 1 << m
    relation = np.zeros((size, len(in_assignments), len(out_assignments)), dtype=bool)
    flow_calls = 0

    if prune and m > 0:
        counts = popcount_array(m)
        order = [int(x) for x in np.argsort(-counts.astype(np.int16), kind="stable")]
    else:
        order = list(range(size))

    for ai, a in enumerate(in_assignments):
        for bi, b in enumerate(out_assignments):
            caps = {name: int(v) for name, v in zip(in_names, a)}
            caps.update({name: int(v) for name, v in zip(out_names, b)})
            cell = relation[:, ai, bi]
            for mask in order:
                if prune:
                    doomed = False
                    bits = ~mask & (size - 1)
                    while bits:
                        low = bits & -bits
                        if not cell[mask | low]:
                            doomed = True
                            break
                        bits ^= low
                    if doomed:
                        continue
                graph = template.configure(alive=mask, virtual_capacities=caps)
                flow_calls += 1
                value = engine.solve(graph, src, snk, limit=demand)
                cell[mask] = value >= demand
    count(FLOW_SOLVES, flow_calls)
    probabilities = configuration_probabilities(net)
    return relation, probabilities, flow_calls


def _cross_cut(
    dist: np.ndarray,
    net: FlowNetwork,
    cut: Sequence[int],
    assignments: Sequence[Sequence[int]],
) -> np.ndarray:
    """Mix the subset distribution over the cut's survival patterns."""
    q = len(assignments)
    check_enumerable(len(cut))
    check_enumerable(q)
    supports = [support_mask(a) for a in assignments]
    new = np.zeros_like(dist)
    for pattern in range(1 << len(cut)):  # repro: noqa[RR109] mask intersection per pattern, no solver state to carry
        p = pattern_probability(net, cut, pattern)
        if p == 0.0:
            continue
        allowed = 0
        for j, s in enumerate(supports):
            if s & ~pattern == 0:
                allowed |= 1 << j
        # R -> R ∩ allowed for every state R.
        for state in range(1 << q):  # repro: noqa[RR109] distribution redistribution, one multiply-add per state
            value = dist[state]
            if value != 0.0:
                new[state & allowed] += value * p
    return new


def _through_segment(
    dist: np.ndarray,
    relation: np.ndarray,
    probabilities: np.ndarray,
    q_in: int,
    q_out: int,
) -> np.ndarray:
    """Push the subset distribution through a middle segment."""
    check_enumerable(max(q_in, q_out))
    new = np.zeros(1 << q_out, dtype=np.float64)
    size = relation.shape[0]
    # Precompute, per configuration, the in-mask that can reach each b.
    in_weights = (1 << np.arange(q_in)).astype(np.int64)
    for c in range(size):
        pc = probabilities[c]
        if pc == 0.0:
            continue
        matrix = relation[c]  # (q_in, q_out) bool
        col_masks = (in_weights @ matrix.astype(np.int64)).astype(np.int64)  # per b
        for state in range(1 << q_in):  # repro: noqa[RR109] frontier DP transition, no flow solves inside
            value = dist[state]
            if value == 0.0:
                continue
            out_state = 0
            for b in range(q_out):
                if col_masks[b] & state:
                    out_state |= 1 << b
            new[out_state] += value * pc
    return new


def chain_reliability(
    net: FlowNetwork,
    demand: FlowDemand,
    cuts: Sequence[Sequence[int]],
    *,
    solver: str | MaxFlowSolver | None = None,
    prune: bool = True,
) -> ReliabilityResult:
    """Exact reliability via the multi-cut chain decomposition."""
    demand.validate_against(net)
    structure = analyze_chain(net, demand.source, demand.sink, cuts)
    r = len(structure.cuts)

    assignment_sets = []
    for cut in structure.cuts:
        capacities = [net.link(i).capacity for i in cut]
        assignments = enumerate_assignments(capacities, demand.rate)
        if not assignments:
            return ReliabilityResult(
                value=0.0,
                method="chain",
                details={"reason": "a cut cannot carry the demand", "cut": tuple(cut)},
            )
        if len(assignments) > MAX_CHAIN_ASSIGNMENTS:
            raise DecompositionError(
                f"interface has {len(assignments)} assignments; the subset DP "
                f"supports at most {MAX_CHAIN_ASSIGNMENTS}"
            )
        assignment_sets.append(assignments)

    flow_calls = 0
    configurations = 0

    # Segment 0: source-side realization array over A_1.
    source_array = build_side_array(
        structure.segments[0],
        role="source",
        terminal=demand.source,
        ports=structure.out_ports[0],
        assignments=assignment_sets[0],
        demand=demand.rate,
        solver=solver,
        prune=prune,
    )
    flow_calls += source_array.flow_calls
    configurations += len(source_array.masks)
    q1 = len(assignment_sets[0])
    dist = np.zeros(1 << q1, dtype=np.float64)
    np.add.at(dist, source_array.masks.astype(np.int64), source_array.probabilities)

    # Cross cut 1.
    dist = _cross_cut(dist, net, structure.cuts[0], assignment_sets[0])

    # Middle segments and their trailing cuts.
    for j in range(1, r):
        relation, probabilities, calls = _build_middle_relation(
            structure.segments[j],
            structure.in_ports[j - 1],
            structure.out_ports[j],
            assignment_sets[j - 1],
            assignment_sets[j],
            demand.rate,
            solver,
            prune,
        )
        flow_calls += calls
        configurations += relation.shape[0]
        dist = _through_segment(
            dist,
            relation,
            probabilities,
            len(assignment_sets[j - 1]),
            len(assignment_sets[j]),
        )
        dist = _cross_cut(dist, net, structure.cuts[j], assignment_sets[j])

    # Final segment: sink-side realization array over A_r.
    sink_array = build_side_array(
        structure.segments[r],
        role="sink",
        terminal=demand.sink,
        ports=structure.in_ports[r - 1],
        assignments=assignment_sets[r - 1],
        demand=demand.rate,
        solver=solver,
        prune=prune,
    )
    flow_calls += sink_array.flow_calls
    configurations += len(sink_array.masks)
    qr = len(assignment_sets[r - 1])
    q_t = np.zeros(1 << qr, dtype=np.float64)
    np.add.at(q_t, sink_array.masks.astype(np.int64), sink_array.probabilities)
    # miss[R] = P(sink realized set ⊆ complement of R) — the no-overlap
    # probability — via a subset-zeta table evaluated at ~R.
    zeta_t = subset_zeta(q_t, inplace=True)
    full = (1 << qr) - 1
    terms: list[float] = []
    for state in range(1 << qr):  # repro: noqa[RR109] zeta-table lookup per state, order-free
        value = dist[state]
        if value == 0.0 or state == 0:
            continue
        terms.append(value * (1.0 - zeta_t[full & ~state]))

    return ReliabilityResult(
        value=prob_fsum(terms),
        method="chain",
        flow_calls=flow_calls,
        configurations=configurations,
        details={
            "num_cuts": r,
            "interface_sizes": [len(a) for a in assignment_sets],
            "largest_segment_links": structure.largest_segment_links,
        },
    )
