"""Exception hierarchy for :mod:`repro`.

Every error deliberately raised by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ReproValueError(ReproError, ValueError):
    """An invalid argument value passed to a :mod:`repro` API.

    Derives from both :class:`ReproError` (so library callers catching
    the hierarchy see it) and :class:`ValueError` (so argument
    validation keeps its conventional builtin type for generic
    callers).  All ``raise ValueError`` sites in the library use this
    class — enforced by lint rule RR104.
    """


class AnalysisError(ReproError):
    """The static-analysis engine was misused or a file failed to parse
    (unknown rule code, malformed selector, unreadable path, ...)."""


class GraphError(ReproError):
    """A structural problem with a :class:`~repro.graph.FlowNetwork`."""


class NodeNotFoundError(GraphError):
    """A referenced node does not exist in the network."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the network")
        self.node = node


class LinkNotFoundError(GraphError):
    """A referenced link index does not exist in the network."""

    def __init__(self, link: object) -> None:
        super().__init__(f"link {link!r} is not in the network")
        self.link = link


class ValidationError(GraphError):
    """A network failed validation (bad capacity, probability, ...)."""


class DemandError(ReproError):
    """A flow demand is malformed (unknown terminals, negative rate, ...)."""


class DecompositionError(ReproError):
    """A bottleneck / chain decomposition could not be constructed.

    Raised e.g. when a supplied link set is not a minimal s-t
    disconnecting set, or when its removal does not split the network
    into exactly two connected components.
    """


class SolverError(ReproError):
    """A max-flow solver was misused or an unknown solver was requested."""


class IntractableError(ReproError):
    """An exact computation was refused because it would exceed the
    configured state-space budget (e.g. enumerating ``2^m`` failure
    configurations for very large ``m``)."""

    def __init__(self, message: str, required: int | None = None, limit: int | None = None) -> None:
        super().__init__(message)
        self.required = required
        self.limit = limit


class EstimationError(ReproError):
    """A Monte-Carlo estimation was misconfigured."""


class OverlayError(ReproError):
    """A P2P overlay could not be constructed as requested."""
