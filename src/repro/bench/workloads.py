"""Benchmark workload construction.

Thin, named wrappers over :mod:`repro.graph.generators` that fix the
knobs each experiment sweeps, so benchmark modules read like the
experiment table in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.demand import FlowDemand
from repro.exceptions import ReproValueError
from repro.graph.generators import bottlenecked_network, chained_network
from repro.graph.network import FlowNetwork

__all__ = ["Workload", "scaling_workload", "alpha_workload", "dk_workload", "chain_workload"]


@dataclass(frozen=True)
class Workload:
    """A network plus its demand, labelled for reporting."""

    label: str
    network: FlowNetwork
    demand: FlowDemand
    params: dict

    @property
    def num_links(self) -> int:
        return self.network.num_links


def scaling_workload(total_links: int, *, demand: int = 2, k: int = 2, seed: int = 0) -> Workload:
    """E7: grow ``|E|`` with a balanced split (α ≈ 1/2).

    ``total_links`` counts the side links; the ``k`` bottleneck links
    come on top.
    """
    half = total_links // 2
    net = bottlenecked_network(
        source_side_links=half,
        sink_side_links=total_links - half,
        num_bottlenecks=k,
        demand=demand,
        seed=seed,
    )
    return Workload(
        label=f"E={total_links + k}",
        network=net,
        demand=FlowDemand("s", "t", demand),
        params={"total_links": total_links, "k": k, "demand": demand, "seed": seed},
    )


def alpha_workload(
    total_links: int, alpha: float, *, demand: int = 2, k: int = 2, seed: int = 0
) -> Workload:
    """E8: fixed ``|E|``, swept split ratio.

    ``alpha`` is the fraction of side links on the bigger side.
    """
    if not 0.5 <= alpha < 1.0:
        raise ReproValueError("alpha must be in [0.5, 1)")
    big = max(k + 1, round(total_links * alpha))
    small = max(k, total_links - big)
    net = bottlenecked_network(
        source_side_links=big,
        sink_side_links=small,
        num_bottlenecks=k,
        demand=demand,
        seed=seed,
    )
    return Workload(
        label=f"alpha={alpha:.2f}",
        network=net,
        demand=FlowDemand("s", "t", demand),
        params={"alpha": alpha, "total_links": total_links, "k": k, "seed": seed},
    )


def dk_workload(demand: int, k: int, *, side_links: int = 6, seed: int = 0) -> Workload:
    """E9: fixed sides, swept ``d`` and ``k`` (the constant factors)."""
    net = bottlenecked_network(
        source_side_links=max(side_links, k),
        sink_side_links=max(side_links, k),
        num_bottlenecks=k,
        demand=demand,
        seed=seed,
    )
    return Workload(
        label=f"d={demand},k={k}",
        network=net,
        demand=FlowDemand("s", "t", demand),
        params={"demand": demand, "k": k, "side_links": side_links, "seed": seed},
    )


def chain_workload(
    num_segments: int, segment_links: int, *, demand: int = 1, cut_size: int = 2, seed: int = 0
) -> Workload:
    """A5: series chains for the multi-cut extension."""
    net = chained_network(
        [segment_links] * num_segments,
        cut_sizes=cut_size,
        demand=demand,
        seed=seed,
    )
    return Workload(
        label=f"r={num_segments - 1}",
        network=net,
        demand=FlowDemand("s", "t", demand),
        params={
            "num_segments": num_segments,
            "segment_links": segment_links,
            "cut_size": cut_size,
            "demand": demand,
            "seed": seed,
        },
    )
