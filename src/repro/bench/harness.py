"""Timing helpers for the experiment benches.

pytest-benchmark times a single target well; the experiment tables need
*sweeps* of quick measurements (one per parameter point) inside one
bench.  :func:`time_call` provides a small best-of-N timer for those
interior points, keeping the pytest-benchmark fixture for the headline
measurement of each bench.

Timestamps come from :func:`repro.obs.wallclock` — the same clock the
kernel spans use — so bench tables and ``repro profile`` traces are
directly comparable (and rule RR107 keeps it that way).  When a
:class:`repro.obs.Recorder` is installed, every repetition is also
captured as a ``bench.call`` span, putting sweep measurements and
kernel phases in one trace.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.recorder import span, wallclock

__all__ = ["time_call", "TimedResult"]


class TimedResult:
    """Value plus the wall-clock seconds of every repetition.

    ``seconds`` is the minimum over repetitions (the standard way to
    suppress scheduling noise for short calls); ``all_seconds`` keeps
    the full sample so benches can report spread, not just best-of-N.
    """

    __slots__ = ("value", "seconds", "all_seconds")

    def __init__(self, value: Any, seconds: float, all_seconds: list[float] | None = None) -> None:
        self.value = value
        self.seconds = seconds
        self.all_seconds = list(all_seconds) if all_seconds is not None else [seconds]

    @property
    def mean_seconds(self) -> float:
        """Mean over the repetitions."""
        return sum(self.all_seconds) / len(self.all_seconds)

    @property
    def max_seconds(self) -> float:
        """Slowest repetition."""
        return max(self.all_seconds)

    @property
    def spread_seconds(self) -> float:
        """Max minus min over the repetitions (scheduling-noise width)."""
        return self.max_seconds - min(self.all_seconds)


def time_call(
    fn: Callable[..., Any],
    *args: Any,
    repeats: int = 3,
    label: str = "bench.call",
    **kwargs: Any,
) -> TimedResult:
    """Best-of-``repeats`` wall-clock timing of ``fn(*args, **kwargs)``.

    Returns the last call's value and all per-repetition timings
    (``seconds`` = the minimum).  ``label`` names the span recorded per
    repetition when a :class:`repro.obs.Recorder` is installed.
    """
    all_seconds: list[float] = []
    value: Any = None
    for repeat in range(max(1, repeats)):
        with span(label, repeat=repeat):
            start = wallclock()
            value = fn(*args, **kwargs)
            all_seconds.append(wallclock() - start)
    return TimedResult(value, min(all_seconds), all_seconds)
