"""Timing helpers for the experiment benches.

pytest-benchmark times a single target well; the experiment tables need
*sweeps* of quick measurements (one per parameter point) inside one
bench.  :func:`time_call` provides a small best-of-N timer for those
interior points, keeping the pytest-benchmark fixture for the headline
measurement of each bench.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["time_call", "TimedResult"]


class TimedResult:
    """Value plus wall-clock seconds of the best repetition."""

    __slots__ = ("value", "seconds")

    def __init__(self, value: Any, seconds: float) -> None:
        self.value = value
        self.seconds = seconds


def time_call(
    fn: Callable[..., Any],
    *args: Any,
    repeats: int = 3,
    **kwargs: Any,
) -> TimedResult:
    """Best-of-``repeats`` wall-clock timing of ``fn(*args, **kwargs)``.

    Returns the last call's value and the minimum elapsed time (the
    standard way to suppress scheduling noise for short calls).
    """
    best = float("inf")
    value: Any = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        value = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return TimedResult(value, best)
