"""Plain-text tables for benchmark output.

pytest-benchmark reports raw timings; the experiment benches also print
the *paper-shaped* rows (who wins, by what factor) through these
helpers so `pytest benchmarks/ --benchmark-only -s` regenerates every
table of EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> None:
    """Print :func:`format_table` with surrounding blank lines."""
    print()
    print(format_table(headers, rows, title=title))
    print()
