"""Plain-text tables for benchmark output.

pytest-benchmark reports raw timings; the experiment benches also print
the *paper-shaped* rows (who wins, by what factor) through these
helpers so `pytest benchmarks/ --benchmark-only -s` regenerates every
table of EXPERIMENTS.md verbatim.

:func:`phase_rows` bridges to :mod:`repro.obs`: it flattens the phase
summary a traced computation leaves in
``ReliabilityResult.details["obs"]`` into table rows, so bench output
and ``repro profile`` output agree on phase names and durations.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["PHASE_HEADERS", "format_table", "phase_rows", "print_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


#: Header row matching the tuples produced by :func:`phase_rows`.
PHASE_HEADERS = ("phase", "seconds", "share", "flow_solves")


def phase_rows(summary: dict[str, Any]) -> list[list[object]]:
    """Table rows (see ``PHASE_HEADERS``) from an obs phase summary.

    ``summary`` is the dict produced by :func:`repro.obs.phase_summary`
    (what a traced :func:`repro.core.api.compute_reliability` leaves in
    ``result.details["obs"]``).  One row per phase: name, wall seconds,
    share of the trace, and the phase's ``flow_solves`` subtree total.
    """
    total = float(summary.get("seconds", 0.0)) or 0.0
    rows: list[list[object]] = []
    for phase in summary.get("phases", ()):
        seconds = float(phase["seconds"])
        share = f"{seconds / total:.1%}" if total > 0 else "-"
        rows.append(
            [phase["name"], seconds, share, phase["counters"].get("flow_solves", 0)]
        )
    return rows


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> None:
    """Print :func:`format_table` with surrounding blank lines."""
    print()
    print(format_table(headers, rows, title=title))
    print()
