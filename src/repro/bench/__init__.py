"""Shared benchmark harness: workloads, timing, table reporting."""

from repro.bench.harness import TimedResult, time_call
from repro.bench.reporting import format_table, print_table
from repro.bench.workloads import (
    Workload,
    alpha_workload,
    chain_workload,
    dk_workload,
    scaling_workload,
)

__all__ = [
    "TimedResult",
    "time_call",
    "format_table",
    "print_table",
    "Workload",
    "alpha_workload",
    "chain_workload",
    "dk_workload",
    "scaling_workload",
]
