"""Subset-lattice transforms (zeta / Möbius) over numpy arrays.

Given ``f`` indexed by bitmasks over ``n`` bits:

* subset zeta:      ``F[S] = sum_{T subseteq S} f[T]``
* superset zeta:    ``F[S] = sum_{T supseteq S} f[T]``

and their Möbius inverses.  All four run in ``O(n 2^n)`` with the
standard in-place butterfly, vectorized through reshaped views (no
copies, per the HPC guide's views-not-copies rule).

The ACCUMULATION step uses the superset zeta: aggregating side
probabilities by realized-assignment mask and superset-summing yields
``P_side(X) = P(realized set contains X)`` for every assignment subset
``X`` simultaneously.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproValueError

__all__ = [
    "subset_zeta",
    "subset_moebius",
    "superset_zeta",
    "superset_moebius",
    "superset_zeta_rows",
]


def _check(values: np.ndarray) -> int:
    if values.ndim != 1:
        raise ReproValueError("transform input must be one-dimensional")
    size = values.shape[0]
    n = size.bit_length() - 1
    if size != 1 << n:
        raise ReproValueError(f"length must be a power of two, got {size}")
    return n


def subset_zeta(values: np.ndarray, *, inplace: bool = False) -> np.ndarray:
    """``F[S] = sum over subsets T of S of f[T]``."""
    out = values if inplace else values.copy()
    n = _check(out)
    for i in range(n):
        step = 1 << i
        view = out.reshape(-1, 2, step)
        view[:, 1, :] += view[:, 0, :]
    return out


def subset_moebius(values: np.ndarray, *, inplace: bool = False) -> np.ndarray:
    """Inverse of :func:`subset_zeta`."""
    out = values if inplace else values.copy()
    n = _check(out)
    for i in range(n):
        step = 1 << i
        view = out.reshape(-1, 2, step)
        view[:, 1, :] -= view[:, 0, :]
    return out


def superset_zeta(values: np.ndarray, *, inplace: bool = False) -> np.ndarray:
    """``F[S] = sum over supersets T of S of f[T]``."""
    out = values if inplace else values.copy()
    n = _check(out)
    for i in range(n):
        step = 1 << i
        view = out.reshape(-1, 2, step)
        view[:, 0, :] += view[:, 1, :]
    return out


def superset_zeta_rows(values: np.ndarray, *, inplace: bool = False) -> np.ndarray:
    """Row-wise :func:`superset_zeta` over a 2-D batch.

    Each row is transformed independently with exactly the scalar
    butterfly schedule — the per-row additions pair the same operands
    in the same order — so every output row is bit-identical to
    ``superset_zeta(values[i])``.  Used by the sweep engine to evaluate
    the ACCUMULATION step for a whole grid of availability points in
    one pass.
    """
    out = values if inplace else values.copy()
    if out.ndim != 2:
        raise ReproValueError("row transform input must be two-dimensional")
    size = out.shape[1]
    n = size.bit_length() - 1
    if size != 1 << n:
        raise ReproValueError(f"row length must be a power of two, got {size}")
    rows = out.shape[0]
    for i in range(n):
        step = 1 << i
        view = out.reshape(rows, -1, 2, step)
        view[:, :, 0, :] += view[:, :, 1, :]
    return out


def superset_moebius(values: np.ndarray, *, inplace: bool = False) -> np.ndarray:
    """Inverse of :func:`superset_zeta`."""
    out = values if inplace else values.copy()
    n = _check(out)
    for i in range(n):
        step = 1 << i
        view = out.reshape(-1, 2, step)
        view[:, 0, :] -= view[:, 1, :]
    return out
