"""Inclusion–exclusion over subset-indexed probability tables.

The ACCUMULATION procedure (paper §IV-B) computes the probability that
*at least one* assignment in a class is realized from the probabilities
``p_X`` that *all* assignments in ``X`` are realized simultaneously:

    P(union) = sum over nonempty X of (-1)^{|X|+1} p_X.

:func:`union_probability_from_intersections` evaluates that signed sum
vectorized; :func:`union_probability` is the classic event-mask variant
used by tests as an independent oracle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ReproValueError
from repro.probability.bitset import parity_array, popcount

__all__ = [
    "union_probability_from_intersections",
    "union_probability",
]


def union_probability_from_intersections(intersections: np.ndarray) -> float:
    """Signed inclusion–exclusion sum over a subset-indexed table.

    ``intersections[X]`` must be ``P(all events in X occur)`` for every
    bitmask ``X`` over ``n`` events (``intersections[0]`` is ignored —
    the empty intersection contributes nothing to the union).  Returns
    ``P(at least one event occurs)``.
    """
    table = np.asarray(intersections, dtype=np.float64)
    size = table.shape[0]
    n = size.bit_length() - 1
    if size != 1 << n:
        raise ReproValueError(f"table length must be a power of two, got {size}")
    if n == 0:
        return 0.0
    signs = -parity_array(n).astype(np.float64)  # (-1)^{|X|+1}
    signs[0] = 0.0
    return float(np.dot(signs, table))


def union_probability(
    event_masks: Sequence[int], probabilities: Sequence[float]
) -> float:
    """``P(outcome hits at least one event)`` by direct summation.

    ``event_masks[j]`` is the bitmask of events realized by outcome
    ``j`` and ``probabilities[j]`` its probability.  Outcomes realizing
    no event (mask 0) contribute nothing.  This is the brute-force
    reference the tests pit the transforms against.
    """
    if len(event_masks) != len(probabilities):
        raise ReproValueError("event_masks and probabilities must have equal length")
    total = 0.0
    for mask, p in zip(event_masks, probabilities):
        if mask:
            total += p
    return total
