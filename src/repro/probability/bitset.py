"""Bitmask utilities.

Failure configurations, realized-assignment sets and supporting subsets
are all represented as integer bitmasks; this module collects the bit
tricks everything else uses.  Functions come in scalar (Python int) and
vectorized (numpy ``uint64``) flavours.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import IntractableError, ReproValueError

#: Largest ``n_bits`` for which :func:`popcount_array` / :func:`parity_array`
#: agree to materialise a ``2**n_bits``-entry table (uint8, so 256 MiB at 28).
MAX_TABLE_BITS = 28

#: Widest uint64 bit vocabulary :func:`mask_weights` can address.
MAX_MASK_BITS = 64

#: Largest ``n_bits`` for which :func:`lattice_bitplanes` materialises the
#: full ``2**n_bits x n_bits`` alive matrix (bool, so 20 MiB at 20).
MAX_PLANE_BITS = 20

__all__ = [
    "MAX_MASK_BITS",
    "MAX_PLANE_BITS",
    "MAX_TABLE_BITS",
    "mask_from_indices",
    "indices_from_mask",
    "popcount",
    "popcount_array",
    "mask_weights",
    "bitplanes",
    "pack_bitplanes",
    "lattice_bitplanes",
    "iter_submasks",
    "iter_supermasks",
    "gray_code",
    "gray_flip_position",
    "gray_lattice",
    "parity_array",
]


def mask_from_indices(indices: Iterable[int]) -> int:
    """Bitmask with the given bit positions set."""
    mask = 0
    for i in indices:
        if i < 0:
            raise ReproValueError(f"bit position must be non-negative, got {i}")
        mask |= 1 << i
    return mask


def indices_from_mask(mask: int) -> list[int]:
    """Ascending bit positions set in ``mask``."""
    if mask < 0:
        raise ReproValueError("mask must be non-negative")
    result = []
    position = 0
    while mask:
        if mask & 1:
            result.append(position)
        mask >>= 1
        position += 1
    return result


def popcount(mask: int) -> int:
    """Number of set bits (arbitrary-precision ints supported)."""
    return bin(mask).count("1") if mask >= 0 else _raise_negative(mask)


def _raise_negative(mask: int) -> int:
    raise ReproValueError(f"mask must be non-negative, got {mask}")


@lru_cache(maxsize=None)
def _popcount_table(n_bits: int) -> np.ndarray:
    """The memoised, **read-only** table behind :func:`popcount_array`.

    Every side array, every worker chunk and every pruned scan asks for
    the same few widths, so the table is built once per width per
    process and shared.  It is marked read-only because it is shared:
    a caller mutating its copy would poison every later caller.
    """
    if n_bits > MAX_TABLE_BITS:
        raise IntractableError(
            f"a 2^{n_bits}-entry popcount table exceeds the budget of 2^{MAX_TABLE_BITS}",
            required=n_bits,
            limit=MAX_TABLE_BITS,
        )
    counts = np.zeros(1 << n_bits, dtype=np.uint8)
    size = 1
    for _ in range(n_bits):
        counts[size : 2 * size] = counts[:size] + 1
        size *= 2
    counts.setflags(write=False)
    return counts


def popcount_array(n_bits: int) -> np.ndarray:
    """``uint8`` array ``a`` of length ``2**n_bits`` with ``a[m] = popcount(m)``.

    Built by doubling: the second half of each prefix is the first half
    plus one.  ``n_bits`` up to ~26 is practical.  The returned array is
    cached per width and **read-only**; copy before mutating.
    """
    if n_bits < 0:
        raise ReproValueError("n_bits must be non-negative")
    return _popcount_table(n_bits)


@lru_cache(maxsize=None)
def _mask_weight_table(n_bits: int) -> np.ndarray:
    """Memoised, **read-only** ``uint64`` powers of two behind :func:`mask_weights`."""
    weights = np.uint64(1) << np.arange(n_bits, dtype=np.uint64)
    weights.setflags(write=False)
    return weights


def mask_weights(n_bits: int) -> np.ndarray:
    """``uint64`` weight vector ``[1, 2, 4, ...]`` of length ``n_bits``.

    The shared packing vocabulary: every site that turns a boolean
    bit-plane matrix into uint64 masks (realization arrays, Monte-Carlo
    samples, class restrictions, the block kernel) multiplies by this
    vector instead of rebuilding ``1 << arange`` per call.  Cached per
    width and **read-only**; copy before mutating.
    """
    if n_bits < 0:
        raise ReproValueError("n_bits must be non-negative")
    if n_bits > MAX_MASK_BITS:
        raise ReproValueError(
            f"uint64 masks hold at most {MAX_MASK_BITS} bits, got {n_bits}"
        )
    return _mask_weight_table(n_bits)


def bitplanes(masks: np.ndarray, bits: Sequence[int]) -> np.ndarray:
    """Transpose uint64 masks into boolean bit-plane columns.

    Column ``j`` of the output is bit ``bits[j]`` of every mask — the
    array-at-a-time inverse of :func:`pack_bitplanes`.  ``bits`` may be
    any subset (or reordering) of positions below :data:`MAX_MASK_BITS`.
    """
    positions = np.asarray(bits, dtype=np.int64).reshape(-1)
    if positions.size and (positions.min() < 0 or positions.max() >= MAX_MASK_BITS):
        raise ReproValueError(
            f"bit positions must lie in [0, {MAX_MASK_BITS}), got {bits!r}"
        )
    columns = np.asarray(masks, dtype=np.uint64)
    planes = (columns[:, None] >> positions.astype(np.uint64)[None, :]) & np.uint64(1)
    return planes.astype(bool)


def pack_bitplanes(planes: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n, q)`` bit-plane matrix into ``q``-bit uint64 masks.

    One matmul against :func:`mask_weights` — no per-bit Python loop.
    """
    matrix = np.asarray(planes)
    if matrix.ndim != 2:
        raise ReproValueError(f"planes must be 2-D, got shape {matrix.shape}")
    weights = mask_weights(matrix.shape[1])
    return (matrix.astype(np.uint64) @ weights).astype(np.uint64)


@lru_cache(maxsize=None)
def _lattice_plane_table(n_bits: int) -> np.ndarray:
    """Memoised, **read-only** alive matrix behind :func:`lattice_bitplanes`."""
    if n_bits > MAX_PLANE_BITS:
        raise IntractableError(
            f"a 2^{n_bits} x {n_bits} alive matrix exceeds the budget of 2^{MAX_PLANE_BITS}",
            required=n_bits,
            limit=MAX_PLANE_BITS,
        )
    codes = np.arange(1 << n_bits, dtype=np.uint64)
    planes = bitplanes(codes, range(n_bits))
    planes.setflags(write=False)
    return planes


def lattice_bitplanes(n_bits: int) -> np.ndarray:
    """Boolean ``(2**n_bits, n_bits)`` matrix: row ``m``, column ``b`` = bit ``b`` of ``m``.

    The alive matrix of the full lattice — the block kernel multiplies
    it against per-port capacity vectors to get every configuration's
    screen budget in one matmul.  Cached per width and **read-only**.
    """
    if n_bits < 0:
        raise ReproValueError("n_bits must be non-negative")
    return _lattice_plane_table(n_bits)


def parity_array(n_bits: int) -> np.ndarray:
    """``int8`` array of ``(-1)**popcount(m)`` for every mask ``m``."""
    counts = popcount_array(n_bits)
    signs = np.where(counts & 1, -1, 1).astype(np.int8)
    return signs


def iter_submasks(mask: int, *, include_empty: bool = True) -> Iterator[int]:
    """All submasks of ``mask``, in decreasing numeric order.

    The classic ``sub = (sub - 1) & mask`` walk: 2^popcount(mask) values.
    """
    if mask < 0:
        _raise_negative(mask)
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask
    if include_empty:
        yield 0


def iter_supermasks(mask: int, universe: int) -> Iterator[int]:
    """All supermasks of ``mask`` within ``universe`` (ascending)."""
    if mask & ~universe:
        raise ReproValueError("mask must be a subset of the universe")
    free = universe & ~mask
    sub = 0
    while True:
        yield mask | sub
        if sub == free:
            return
        sub = (sub - free) & free


def gray_code(i: int) -> int:
    """The ``i``-th reflected Gray code."""
    return i ^ (i >> 1)


def gray_flip_position(i: int) -> int:
    """Bit flipped between Gray codes ``i-1`` and ``i`` (``i >= 1``).

    Equals the number of trailing zeros of ``i``.
    """
    if i <= 0:
        raise ReproValueError("gray_flip_position is defined for i >= 1")
    return (i & -i).bit_length() - 1


def gray_lattice(n_bits: int, order: "Sequence[int] | None" = None) -> Iterator[int]:
    """Every mask in ``[0, 2**n_bits)`` exactly once, in Gray-code order.

    Consecutive masks differ in exactly one bit
    (:func:`gray_flip_position`), which is what lets the incremental
    max-flow engine repair one link per lattice step instead of
    cold-solving each configuration.

    ``order`` relabels walk positions to bits: position ``p`` of the
    walk flips bit ``order[p]`` instead of bit ``p``.  Any permutation
    of ``range(n_bits)`` still visits every mask exactly once with
    one-bit steps.  Walk position ``p`` flips ``2**(n_bits - 1 - p)``
    times, so callers park expensive-to-flip bits at high positions.
    """
    if n_bits < 0:
        raise ReproValueError("n_bits must be non-negative")
    if n_bits > MAX_TABLE_BITS:
        raise IntractableError(
            f"a 2^{n_bits}-step Gray walk exceeds the budget of 2^{MAX_TABLE_BITS}",
            required=n_bits,
            limit=MAX_TABLE_BITS,
        )
    if order is not None:
        shifts = [1 << b for b in order]
        if len(shifts) != n_bits or sorted(order) != list(range(n_bits)):
            raise ReproValueError("order must be a permutation of range(n_bits)")
    else:
        shifts = [1 << p for p in range(n_bits)]
    code = 0
    yield code
    for i in range(1, 1 << n_bits):
        code ^= shifts[gray_flip_position(i)]
        yield code
