"""Vectorized Bernoulli sampling of failure configurations.

Monte-Carlo estimation draws whole batches of alive-bitmasks at once:
one uniform matrix, one comparison, one packing pass — no Python loop
over samples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ReproValueError
from repro.graph.generators import as_rng
from repro.graph.network import FlowNetwork
from repro.probability.bitset import pack_bitplanes

__all__ = ["sample_alive_masks", "sample_alive_matrix"]


def _failure_probs(source: FlowNetwork | Sequence[float]) -> np.ndarray:
    if isinstance(source, FlowNetwork):
        return np.asarray(source.failure_probabilities(), dtype=np.float64)
    return np.asarray(source, dtype=np.float64)


def sample_alive_matrix(
    source: FlowNetwork | Sequence[float],
    num_samples: int,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Boolean matrix of shape ``(num_samples, m)``: entry true = alive."""
    probs = _failure_probs(source)
    generator = as_rng(rng)
    uniforms = generator.random((num_samples, probs.shape[0]))
    return uniforms >= probs  # alive with probability 1 - p


def sample_alive_masks(
    source: FlowNetwork | Sequence[float],
    num_samples: int,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Alive-bitmask samples as a ``uint64`` array of length ``num_samples``.

    Requires ``m <= 63`` (bitmask width); the exact algorithms cap out
    far below that anyway.
    """
    probs = _failure_probs(source)
    m = probs.shape[0]
    if m > 63:
        raise ReproValueError(f"bitmask sampling supports at most 63 links, got {m}")
    alive = sample_alive_matrix(source, num_samples, rng=rng)
    # pack_bitplanes shares the cached weight vector with every other
    # packing site (and rejects m > 64 on its own).
    return pack_bitplanes(alive)
