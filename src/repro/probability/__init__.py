"""Probability substrate: configuration enumeration, bit tricks,
subset-lattice transforms, inclusion–exclusion and sampling."""

from repro.probability.bitset import (
    gray_code,
    gray_flip_position,
    gray_lattice,
    indices_from_mask,
    iter_submasks,
    iter_supermasks,
    mask_from_indices,
    parity_array,
    popcount,
    popcount_array,
)
from repro.probability.enumeration import (
    MAX_ENUM_BITS,
    check_enumerable,
    conditional_configuration_probabilities,
    configuration_probabilities,
    configuration_probability,
)
from repro.probability.inclusion_exclusion import (
    union_probability,
    union_probability_from_intersections,
)
from repro.probability.sampling import sample_alive_masks, sample_alive_matrix
from repro.probability.zeta import (
    subset_moebius,
    subset_zeta,
    superset_moebius,
    superset_zeta,
)

__all__ = [
    "gray_code",
    "gray_flip_position",
    "gray_lattice",
    "indices_from_mask",
    "iter_submasks",
    "iter_supermasks",
    "mask_from_indices",
    "parity_array",
    "popcount",
    "popcount_array",
    "MAX_ENUM_BITS",
    "check_enumerable",
    "conditional_configuration_probabilities",
    "configuration_probabilities",
    "configuration_probability",
    "union_probability",
    "union_probability_from_intersections",
    "sample_alive_masks",
    "sample_alive_matrix",
    "subset_moebius",
    "subset_zeta",
    "superset_moebius",
    "superset_zeta",
]
