"""Probability substrate: configuration enumeration, bit tricks,
subset-lattice transforms, inclusion–exclusion and sampling."""

from repro.probability.bitset import (
    bitplanes,
    gray_code,
    gray_flip_position,
    gray_lattice,
    indices_from_mask,
    iter_submasks,
    iter_supermasks,
    lattice_bitplanes,
    mask_from_indices,
    mask_weights,
    pack_bitplanes,
    parity_array,
    popcount,
    popcount_array,
)
from repro.probability.enumeration import (
    MAX_ENUM_BITS,
    check_enumerable,
    conditional_configuration_probabilities,
    configuration_probabilities,
    configuration_probability,
)
from repro.probability.inclusion_exclusion import (
    union_probability,
    union_probability_from_intersections,
)
from repro.probability.sampling import sample_alive_masks, sample_alive_matrix
from repro.probability.zeta import (
    subset_moebius,
    subset_zeta,
    superset_moebius,
    superset_zeta,
)

__all__ = [
    "bitplanes",
    "gray_code",
    "gray_flip_position",
    "gray_lattice",
    "indices_from_mask",
    "iter_submasks",
    "iter_supermasks",
    "lattice_bitplanes",
    "mask_from_indices",
    "mask_weights",
    "pack_bitplanes",
    "parity_array",
    "popcount",
    "popcount_array",
    "MAX_ENUM_BITS",
    "check_enumerable",
    "conditional_configuration_probabilities",
    "configuration_probabilities",
    "configuration_probability",
    "union_probability",
    "union_probability_from_intersections",
    "sample_alive_masks",
    "sample_alive_matrix",
    "subset_moebius",
    "subset_zeta",
    "superset_moebius",
    "superset_zeta",
]
