"""Vectorized enumeration of failure configurations.

A failure configuration over ``m`` links is the bitmask of *alive*
links (bit ``i`` set means link ``i`` is up).  The probability of
configuration ``c`` is ``prod_{i alive} (1 - p_i) * prod_{i dead} p_i``
(the paper's expression below Fig. 1, with ``E'`` the alive set).

:func:`configuration_probabilities` materialises all ``2^m``
probabilities with a numpy doubling construction — no Python loop over
configurations — which is the single hottest primitive of the exact
algorithms.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import IntractableError, ReproValueError
from repro.graph.network import FlowNetwork
from repro.obs.recorder import CONFIGURATIONS_ENUMERATED, count, span

__all__ = [
    "MAX_ENUM_BITS",
    "check_enumerable",
    "configuration_probabilities",
    "configuration_probability",
    "conditional_configuration_probabilities",
]

#: Refuse to materialise more than ``2**MAX_ENUM_BITS`` configurations
#: (8 bytes each => 2 GiB of float64 at 28 bits).
MAX_ENUM_BITS = 28

#: Tables up to this width are memoised by failure-probability vector
#: (32 MiB of float64 at 22 bits; the cache holds at most 8 tables).
#: Wider tables are rebuilt per call — at that size the build cost is
#: dwarfed by whatever enumeration asked for it.
_PROB_TABLE_CACHE_BITS = 22


def check_enumerable(n_bits: int, *, limit: int = MAX_ENUM_BITS) -> None:
    """Raise :class:`IntractableError` when ``2**n_bits`` is over budget."""
    if n_bits > limit:
        raise IntractableError(
            f"enumerating 2^{n_bits} configurations exceeds the budget of 2^{limit}",
            required=n_bits,
            limit=limit,
        )


def _as_failure_probs(source: FlowNetwork | Sequence[float]) -> np.ndarray:
    if isinstance(source, FlowNetwork):
        probs = np.asarray(source.failure_probabilities(), dtype=np.float64)
    else:
        probs = np.asarray(source, dtype=np.float64)
    if probs.ndim != 1:
        raise ReproValueError("failure probabilities must be one-dimensional")
    if np.any((probs < 0.0) | (probs >= 1.0)):
        raise ReproValueError("failure probabilities must lie in [0, 1)")
    return probs


def configuration_probabilities(
    source: FlowNetwork | Sequence[float],
) -> np.ndarray:
    """Probability of every alive-bitmask configuration.

    Returns a float64 array ``P`` of length ``2**m`` with
    ``P[c] = prod_i (bit_i(c) ? 1 - p_i : p_i)``.  The array sums to 1.

    Construction: start from ``[1.0]`` and for each link append the
    alive-scaled copy after the dead-scaled copy, so that link ``i``
    occupies bit ``i``.  ``O(2^m)`` time and memory.
    """
    probs = _as_failure_probs(source)
    m = len(probs)
    check_enumerable(m)
    with span("probability.table", links=m):
        # The counter reports configurations *requested*, cache hit or
        # not — the paper's cost accounting is about the enumeration the
        # algorithm asked for, not this process's memoisation luck.
        count(CONFIGURATIONS_ENUMERATED, 1 << m)
        if m <= _PROB_TABLE_CACHE_BITS:
            return _probability_table(tuple(float(p) for p in probs))
        return _build_probability_table(tuple(float(p) for p in probs))


@lru_cache(maxsize=8)
def _probability_table(probs: tuple[float, ...]) -> np.ndarray:
    """Memoised, **read-only** probability table for one prob vector.

    Each side array (and each worker chunk merge) asks for the same
    table; building it once per process and sharing a read-only view
    removes an ``O(2^m)`` rebuild from every repeat caller.
    """
    table = _build_probability_table(probs)
    table.setflags(write=False)
    return table


def _build_probability_table(probs: tuple[float, ...]) -> np.ndarray:
    """The doubling construction (uncached, always a fresh array)."""
    table = np.ones(1, dtype=np.float64)
    for p in probs:
        dead = table * p
        alive = table * (1.0 - p)
        table = np.concatenate([dead, alive])
    return table


def configuration_probability(
    source: FlowNetwork | Sequence[float], mask: int
) -> float:
    """Probability of one configuration, without the full table."""
    probs = _as_failure_probs(source)
    value = 1.0
    for i, p in enumerate(probs):
        value *= (1.0 - p) if (mask >> i) & 1 else p
    return float(value)


def conditional_configuration_probabilities(
    source: FlowNetwork | Sequence[float],
    *,
    forced_alive: Iterable[int] = (),
    forced_dead: Iterable[int] = (),
) -> np.ndarray:
    """Configuration probabilities with some links conditioned.

    Links in ``forced_alive`` are treated as up with probability 1 and
    links in ``forced_dead`` as down with probability 1 — the
    conditioning used by Eq. (3), where the bottleneck pattern ``E'`` is
    fixed and the side configurations keep their own probabilities.
    Configurations contradicting the conditioning get probability 0; the
    table sums to 1.
    """
    probs = _as_failure_probs(source).copy()
    alive_set = set(forced_alive)
    dead_set = set(forced_dead)
    overlap = alive_set & dead_set
    if overlap:
        raise ReproValueError(f"links {sorted(overlap)} forced both alive and dead")
    for i in alive_set:
        probs[i] = 0.0
    for i in dead_set:
        # p = 1 would be rejected by validation; emulate by splitting the
        # doubling step manually below.
        pass
    m = len(probs)
    check_enumerable(m)
    table = np.ones(1, dtype=np.float64)
    for i, p in enumerate(probs):
        if i in dead_set:
            dead = table.copy()
            alive = np.zeros_like(table)
        else:
            dead = table * p
            alive = table * (1.0 - p)
        table = np.concatenate([dead, alive])
    return table
