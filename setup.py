"""Shim for legacy editable installs in offline environments.

``pip install -e . --no-build-isolation --no-use-pep517`` works without
the ``wheel`` package; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
